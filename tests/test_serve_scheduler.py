"""Deterministic tests for the micro-batching scheduler.

Every policy decision is driven through an explicit fake clock — no
sleeps, no threads — because ``MicroBatchScheduler.poll`` is a pure state
transition on (queue contents, now).
"""

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    MicroBatchScheduler,
    QueueFullError,
    RequestTimeoutError,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


IMAGE = np.zeros((4, 4, 3), dtype=np.float32)


def make_scheduler(**policy_kwargs):
    clock = FakeClock()
    policy = BatchPolicy(**{
        "max_batch_size": 4, "max_wait_ms": 10.0, "max_queue": 8,
        "timeout_ms": 100.0, **policy_kwargs,
    })
    return MicroBatchScheduler(policy, clock=clock), clock


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_queue=0)
        with pytest.raises(ValueError):
            BatchPolicy(timeout_ms=0)


class TestCoalescing:
    def test_empty_flush_on_timer(self):
        scheduler, clock = make_scheduler()
        # The flush timer firing with nothing queued is a no-op.
        clock.now = 123.0
        assert scheduler.poll() is None
        assert scheduler.poll(idle=True) is None

    def test_max_batch_coalescing(self):
        scheduler, clock = make_scheduler(max_batch_size=4)
        for _ in range(6):
            scheduler.submit(IMAGE)
        batch = scheduler.poll()  # not idle, no wait elapsed: full-batch rule
        assert batch is not None and len(batch) == 4
        assert batch.reason == "full"
        assert batch.images.shape == (4, 4, 4, 3)
        assert scheduler.qsize() == 2  # remainder stays queued
        assert scheduler.poll() is None  # 2 < max_batch and no time has passed

    def test_timer_flush_after_max_wait(self):
        scheduler, clock = make_scheduler(max_wait_ms=10.0)
        scheduler.submit(IMAGE)
        scheduler.submit(IMAGE)
        assert scheduler.poll(now=0.0099) is None  # under the wait cap: hold
        batch = scheduler.poll(now=0.0101)
        assert batch is not None and len(batch) == 2
        assert batch.reason == "timer"

    def test_idle_single_request_dispatches_immediately(self):
        scheduler, clock = make_scheduler(max_wait_ms=10.0)
        request = scheduler.submit(IMAGE)
        # Executor busy: the lone request waits for more to coalesce…
        assert scheduler.poll(now=0.0) is None
        # …but an idle executor takes it with zero batching stall.
        batch = scheduler.poll(now=0.0, idle=True)
        assert batch is not None and batch.requests == [request]
        assert batch.reason == "idle"

    def test_batches_preserve_fifo_order(self):
        scheduler, clock = make_scheduler(max_batch_size=3)
        submitted = [scheduler.submit(IMAGE) for _ in range(3)]
        batch = scheduler.poll()
        assert batch.requests == submitted


class TestBackpressure:
    def test_queue_full_rejection_with_reason(self):
        scheduler, clock = make_scheduler(max_queue=3)
        for _ in range(3):
            scheduler.submit(IMAGE)
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit(IMAGE)
        assert "queue full" in str(excinfo.value)
        assert "3/3" in excinfo.value.reason
        assert scheduler.rejected == 1
        assert scheduler.qsize() == 3  # rejected request never entered

    def test_queue_drains_then_accepts_again(self):
        scheduler, clock = make_scheduler(max_queue=3, max_batch_size=3)
        for _ in range(3):
            scheduler.submit(IMAGE)
        with pytest.raises(QueueFullError):
            scheduler.submit(IMAGE)
        assert scheduler.poll() is not None
        scheduler.submit(IMAGE)  # space again after the batch left
        assert scheduler.qsize() == 1


class TestTimeouts:
    def test_request_timeout_while_queued(self):
        scheduler, clock = make_scheduler(timeout_ms=100.0, max_wait_ms=10.0)
        request = scheduler.submit(IMAGE)
        clock.now = 0.2  # past the 100 ms deadline
        assert scheduler.poll(idle=True) is None  # expired, not dispatched
        assert request.done()
        with pytest.raises(RequestTimeoutError, match="timed out"):
            request.result(timeout=0)
        assert scheduler.timed_out == 1
        assert scheduler.qsize() == 0

    def test_fresh_requests_survive_expiry_sweep(self):
        scheduler, clock = make_scheduler(timeout_ms=100.0, max_batch_size=8)
        stale = scheduler.submit(IMAGE, now=0.0)
        fresh = scheduler.submit(IMAGE, now=0.15)  # submit sweeps stale entries
        assert stale.done() and scheduler.timed_out == 1
        assert scheduler.expire_timeouts(now=0.2) == []  # fresh one survives
        batch = scheduler.poll(now=0.2, idle=True)
        assert batch is not None and batch.requests == [fresh]

    def test_submit_expires_stale_entries_before_capacity_check(self):
        scheduler, clock = make_scheduler(max_queue=2, timeout_ms=100.0)
        scheduler.submit(IMAGE, now=0.0)
        scheduler.submit(IMAGE, now=0.0)
        clock.now = 0.5  # both queued requests are now past their deadline
        scheduler.submit(IMAGE)  # must not raise: stale entries freed slots
        assert scheduler.qsize() == 1
        assert scheduler.timed_out == 2


class TestNextEventAndShutdown:
    def test_next_event_tracks_flush_deadline(self):
        scheduler, clock = make_scheduler(max_wait_ms=10.0)
        assert scheduler.next_event() is None
        scheduler.submit(IMAGE, now=0.0)
        assert scheduler.next_event(now=0.004) == pytest.approx(0.006)
        assert scheduler.next_event(now=0.5) == 0.0

    def test_close_fails_queued_requests(self):
        scheduler, clock = make_scheduler()
        request = scheduler.submit(IMAGE)
        scheduler.close()
        with pytest.raises(QueueFullError):
            request.result(timeout=0)
        with pytest.raises(QueueFullError):
            scheduler.submit(IMAGE)

    def test_wait_for_batch_returns_queued_work_without_sleeping(self):
        # Deterministic blocking path: work is already due, so wait_for_batch
        # returns on its first poll regardless of timeout.
        scheduler, clock = make_scheduler()
        scheduler.submit(IMAGE)
        batch = scheduler.wait_for_batch(timeout=10.0, idle=True)
        assert batch is not None and len(batch) == 1


class TestPriorityAndDeadlines:
    def test_submit_validates_priority_and_deadline(self):
        scheduler, clock = make_scheduler()
        with pytest.raises(ValueError, match="priority"):
            scheduler.submit(IMAGE, priority="urgent")
        with pytest.raises(ValueError, match="deadline_ms"):
            scheduler.submit(IMAGE, deadline_ms=0.0)

    def test_higher_band_dispatches_first(self):
        scheduler, clock = make_scheduler(max_batch_size=2)
        best = scheduler.submit(IMAGE, priority="best_effort")
        batch = scheduler.submit(IMAGE, priority="batch")
        interactive = scheduler.submit(IMAGE, priority="interactive")
        picked = scheduler.poll(idle=True)
        assert picked.requests == [interactive, batch]
        assert scheduler.poll(idle=True).requests == [best]

    def test_edf_within_a_band(self):
        scheduler, clock = make_scheduler(max_batch_size=3)
        loose = scheduler.submit(IMAGE, priority="interactive",
                                 deadline_ms=900.0)
        tight = scheduler.submit(IMAGE, priority="interactive",
                                 deadline_ms=100.0)
        none = scheduler.submit(IMAGE, priority="interactive")
        picked = scheduler.poll(idle=True)
        # Earliest deadline first; deadline-free requests sort last.
        assert picked.requests == [tight, loose, none]

    def test_fifo_preserved_for_equal_keys(self):
        scheduler, clock = make_scheduler(max_batch_size=4)
        first = scheduler.submit(IMAGE)
        second = scheduler.submit(IMAGE)
        assert scheduler.poll(idle=True).requests == [first, second]

    def test_deadline_expiry_is_typed_not_timeout(self):
        from repro.serve import DeadlineExceededError

        scheduler, clock = make_scheduler(timeout_ms=100.0)
        doomed = scheduler.submit(IMAGE, deadline_ms=10.0)
        ok = scheduler.submit(IMAGE)
        clock.now = 0.05  # past the 10ms deadline, before the 100ms timeout
        batch = scheduler.poll(idle=True)
        assert batch.requests == [ok]
        assert doomed.done()
        with pytest.raises(DeadlineExceededError) as info:
            doomed.result()
        assert info.value.reason == "deadline"
        assert doomed.expire_reason == "deadline"
        # The queue-timeout path stays RequestTimeoutError.
        stale = scheduler.submit(IMAGE)
        clock.now = 0.05 + 0.2
        scheduler.poll(idle=True)
        with pytest.raises(RequestTimeoutError):
            stale.result()
        assert stale.expire_reason == "timeout"

    def test_expiry_callback_carries_the_reason(self):
        from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler

        expired = []
        clock = FakeClock()
        scheduler = MicroBatchScheduler(
            BatchPolicy(max_batch_size=4, timeout_ms=1000.0),
            clock=clock, on_expire=expired.append,
        )
        scheduler.submit(IMAGE, deadline_ms=5.0)
        clock.now = 0.5
        scheduler.poll(idle=True)
        assert [r.expire_reason for r in expired] == ["deadline"]

    def test_deadline_never_outlives_queue_timeout(self):
        # A deadline looser than timeout_ms still expires as a timeout.
        scheduler, clock = make_scheduler(timeout_ms=50.0)
        request = scheduler.submit(IMAGE, deadline_ms=5000.0)
        clock.now = 0.2
        scheduler.poll(idle=True)
        with pytest.raises(RequestTimeoutError):
            request.result()
        assert request.expire_reason == "timeout"
