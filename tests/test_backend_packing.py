"""Tests for QUB bit-packing and the packed weight store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import PackedWeightStore, iter_linear_weight_taps
from repro.hw.accelerator import encode_tensor
from repro.quant.qub import pack_qub_words, unpack_qub_words


class TestPackUnpackWords:
    @given(
        bits=st.integers(1, 16),
        words=st.lists(st.integers(0, 2**16 - 1), max_size=64),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_lossless(self, bits, words):
        words = np.asarray([w & ((1 << bits) - 1) for w in words], dtype=np.uint32)
        packed = pack_qub_words(words, bits)
        np.testing.assert_array_equal(
            unpack_qub_words(packed, bits, words.size), words
        )

    @given(bits=st.integers(1, 16), count=st.integers(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_packed_size_is_ceil_of_bit_count(self, bits, count):
        words = np.zeros(count, dtype=np.uint32)
        assert pack_qub_words(words, bits).nbytes == -(-count * bits // 8)

    def test_roundtrip_preserves_shape_via_count(self):
        words = np.arange(12, dtype=np.uint32).reshape(3, 4) % 16
        packed = pack_qub_words(words, 4)
        np.testing.assert_array_equal(
            unpack_qub_words(packed, 4, 12).reshape(3, 4), words
        )

    def test_rejects_oversized_words(self):
        with pytest.raises(ValueError, match="exceeds"):
            pack_qub_words(np.array([16], dtype=np.uint32), 4)

    def test_rejects_bad_bit_widths(self):
        with pytest.raises(ValueError, match="bits"):
            pack_qub_words(np.array([0]), 0)
        with pytest.raises(ValueError, match="bits"):
            unpack_qub_words(np.zeros(1, dtype=np.uint8), 17, 1)

    def test_unpack_validates_buffer_size(self):
        with pytest.raises(ValueError):
            unpack_qub_words(np.zeros(1, dtype=np.uint8), 4, 100)

    def test_word_dtype_tracks_width(self):
        packed = pack_qub_words(np.array([1, 2, 3], dtype=np.uint32), 12)
        assert unpack_qub_words(packed, 12, 3).dtype == np.uint16
        packed = pack_qub_words(np.array([1, 2, 3], dtype=np.uint32), 8)
        assert unpack_qub_words(packed, 8, 3).dtype == np.uint8


class TestPackedWeightStore:
    @pytest.fixture(scope="class")
    def store(self):
        from repro.models.configs import ModelConfig
        from repro.models.vit import build_vit

        model = build_vit(ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2), seed=0)
        return model, PackedWeightStore.from_model(model, 4)

    def test_covers_every_gemm_weight(self, store):
        model, packed = store
        taps = [tap for tap, _ in iter_linear_weight_taps(model)]
        assert sorted(packed.weights) == sorted(taps)
        assert len(packed) == len(taps)

    def test_words_match_reference_encode(self, store):
        model, packed = store
        for tap, layer in iter_linear_weight_taps(model):
            reference = encode_tensor(layer.weight.data, 4)
            np.testing.assert_array_equal(packed[tap].words(), reference.qubs)

    def test_shifted_matches_reference_decode(self, store):
        model, packed = store
        for tap, layer in iter_linear_weight_taps(model):
            reference = encode_tensor(layer.weight.data, 4)
            d, n_sh = reference.decoded()
            np.testing.assert_array_equal(packed[tap].shifted(), d << n_sh)

    def test_to_float_matches_reference_load(self, store):
        model, packed = store
        for tap, layer in iter_linear_weight_taps(model):
            reference = encode_tensor(layer.weight.data, 4)
            np.testing.assert_array_equal(packed[tap].to_float(), reference.to_float())

    def test_four_bit_storage_beats_float32_by_2x(self, store):
        _, packed = store
        assert packed.reduction >= 2.0
        # Dense 4-bit packing should in fact approach 8x.
        assert packed.reduction > 6.0

    def test_summary_is_json_ready(self, store):
        import json

        _, packed = store
        summary = packed.summary()
        assert summary["bits"] == 4
        assert summary["packed_weight_bytes"] < summary["float_weight_bytes"]
        json.dumps(summary)

    def test_deit_includes_distillation_head(self):
        from repro.models.configs import ModelConfig
        from repro.models.vit import build_vit

        deit = build_vit(
            ModelConfig("tiny_deit", "deit", 16, 4, 3, 10, 32, 2, 2, distilled=True),
            seed=0,
        )
        taps = [tap for tap, _ in iter_linear_weight_taps(deit)]
        assert "tiny_deit.head_dist.weight" in taps
