"""Tests for the seeded traffic-trace generator."""

import dataclasses

import pytest

from repro.serve.traces import (
    TraceConfig,
    generate_trace,
    offered_rate,
    tenant_mix,
    trace_stats,
)


class TestConfigValidation:
    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError):
            TraceConfig(base_rate=0.0)
        with pytest.raises(ValueError):
            TraceConfig(duration_s=-1.0)

    def test_rejects_bad_flash(self):
        with pytest.raises(ValueError):
            TraceConfig(flash_multiplier=0.5)
        with pytest.raises(ValueError):
            TraceConfig(flash_at=1.5)

    def test_rejects_bad_tenants(self):
        with pytest.raises(ValueError):
            TraceConfig(tenants=0)
        with pytest.raises(ValueError):
            TraceConfig(tenant_skew=-0.1)


class TestTenantMix:
    def test_sums_to_one_and_is_skewed(self):
        mix = tenant_mix(TraceConfig(tenants=5, tenant_skew=1.1))
        assert sum(mix.values()) == pytest.approx(1.0)
        shares = list(mix.values())
        assert shares == sorted(shares, reverse=True)
        assert shares[0] > shares[-1]

    def test_zero_skew_is_uniform(self):
        mix = tenant_mix(TraceConfig(tenants=4, tenant_skew=0.0))
        assert all(v == pytest.approx(0.25) for v in mix.values())


class TestOfferedRate:
    def test_flash_window_multiplies_the_rate(self):
        config = TraceConfig(
            base_rate=100.0, diurnal_amplitude=0.0,
            flash_at=0.5, flash_len=0.25, flash_multiplier=4.0,
        )
        start, end = config.flash_window
        assert offered_rate(config, start - 0.01) == pytest.approx(100.0)
        assert offered_rate(config, (start + end) / 2) == pytest.approx(400.0)
        assert offered_rate(config, end + 0.01) == pytest.approx(100.0)

    def test_diurnal_cycle_breathes_around_the_base(self):
        config = TraceConfig(
            base_rate=100.0, diurnal_amplitude=0.5, diurnal_period_s=4.0,
            flash_multiplier=1.0,
        )
        assert offered_rate(config, 1.0) == pytest.approx(150.0)  # sin peak
        assert offered_rate(config, 3.0) == pytest.approx(50.0)  # sin trough


class TestGenerateTrace:
    def test_same_seed_replays_identically(self):
        config = TraceConfig(duration_s=2.0, base_rate=200.0, seed=7)
        assert generate_trace(config) == generate_trace(config)

    def test_different_seeds_differ(self):
        base = TraceConfig(duration_s=2.0, base_rate=200.0, seed=1)
        other = dataclasses.replace(base, seed=2)
        assert generate_trace(base) != generate_trace(other)

    def test_events_are_sorted_and_bounded(self):
        config = TraceConfig(duration_s=2.0, base_rate=300.0, seed=3)
        events = generate_trace(config)
        times = [e.at_s for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t <= config.duration_s for t in times)
        assert all(e.tenant.startswith("tenant-") for e in events)

    def test_flash_crowd_is_visible_in_the_stats(self):
        config = TraceConfig(
            duration_s=4.0, base_rate=400.0, seed=0,
            diurnal_amplitude=0.0, flash_multiplier=4.0,
        )
        stats = trace_stats(generate_trace(config), config)
        assert stats["flash_over_steady"] == pytest.approx(4.0, rel=0.25)
        assert stats["events"] > 0

    def test_stats_count_every_tenant(self):
        config = TraceConfig(duration_s=2.0, base_rate=300.0, tenants=3, seed=5)
        events = generate_trace(config)
        stats = trace_stats(events, config)
        assert sum(stats["per_tenant"].values()) == len(events)
        assert set(stats["per_tenant"]) == set(tenant_mix(config))


class TestPriorityBands:
    def test_bands_follow_the_configured_mix(self):
        config = TraceConfig(duration_s=20.0, base_rate=100.0, seed=3)
        events = generate_trace(config)
        counts = {}
        for event in events:
            counts[event.priority] = counts.get(event.priority, 0) + 1
        total = len(events)
        for band, want in config.priority_mix.items():
            assert counts[band] / total == pytest.approx(want, abs=0.05)

    def test_band_deadlines_attach_per_band(self):
        events = generate_trace(TraceConfig(duration_s=5.0, seed=1))
        for event in events:
            if event.priority == "interactive":
                assert event.deadline_ms == 1500.0
            else:
                assert event.deadline_ms is None

    def test_band_sampling_does_not_move_arrivals(self):
        # The band stream is separate from the arrival stream: changing
        # the mix must leave the arrival times and tenants untouched.
        base = TraceConfig(duration_s=4.0, seed=9)
        skewed = TraceConfig(
            duration_s=4.0, seed=9,
            priority_mix={"interactive": 0.9, "batch": 0.1},
        )
        a = generate_trace(base)
        b = generate_trace(skewed)
        assert [(e.at_s, e.tenant) for e in a] == [(e.at_s, e.tenant) for e in b]

    def test_rejects_unknown_band_and_bad_mix(self):
        with pytest.raises(ValueError, match="priority band"):
            TraceConfig(priority_mix={"realtime": 1.0})
        with pytest.raises(ValueError, match="sum"):
            TraceConfig(priority_mix={"batch": 0.0})
        with pytest.raises(ValueError, match="band_deadline_ms"):
            TraceConfig(band_deadline_ms={"batch": -1.0})


class TestTraceRoundTrip:
    def test_save_load_is_identity(self, tmp_path):
        from repro.serve import load_trace, save_trace

        events = generate_trace(TraceConfig(duration_s=3.0, seed=5))
        path = tmp_path / "trace.jsonl"
        save_trace(events, path)
        assert load_trace(path) == events

    def test_checked_in_sample_trace_loads(self):
        from pathlib import Path

        from repro.serve import load_trace

        path = Path(__file__).parent / "data" / "sample_trace.jsonl"
        events = load_trace(path)
        assert len(events) > 0
        assert all(e.at_s >= 0 for e in events)
        bands = {e.priority for e in events}
        assert bands <= {"interactive", "batch", "best_effort"}
        assert any(e.deadline_ms is not None for e in events)

    def test_load_validates_rows(self, tmp_path):
        from repro.serve import load_trace

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"at_s": 1.0}\n')
        with pytest.raises(ValueError, match="tenant"):
            load_trace(bad)
        bad.write_text('{"at_s": 1.0, "tenant": "t", "priority": "nope"}\n')
        with pytest.raises(ValueError, match="priority"):
            load_trace(bad)
        bad.write_text('{"at_s": 1.0, "tenant": "t", "deadline_ms": -5}\n')
        with pytest.raises(ValueError, match="deadline_ms"):
            load_trace(bad)
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(bad)

    def test_load_sorts_by_time_and_keeps_spec(self, tmp_path):
        from repro.serve import load_trace

        path = tmp_path / "recorded.jsonl"
        path.write_text(
            '{"at_s": 2.0, "tenant": "b", "spec": "vit_s/quq/4"}\n'
            "\n"
            '{"at_s": 0.5, "tenant": "a", "priority": "interactive", '
            '"deadline_ms": 250}\n'
        )
        events = load_trace(path)
        assert [e.tenant for e in events] == ["a", "b"]
        assert events[0].deadline_ms == 250.0
        assert events[1].spec == "vit_s/quq/4"
