"""Tests for the seeded traffic-trace generator."""

import dataclasses

import pytest

from repro.serve.traces import (
    TraceConfig,
    generate_trace,
    offered_rate,
    tenant_mix,
    trace_stats,
)


class TestConfigValidation:
    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError):
            TraceConfig(base_rate=0.0)
        with pytest.raises(ValueError):
            TraceConfig(duration_s=-1.0)

    def test_rejects_bad_flash(self):
        with pytest.raises(ValueError):
            TraceConfig(flash_multiplier=0.5)
        with pytest.raises(ValueError):
            TraceConfig(flash_at=1.5)

    def test_rejects_bad_tenants(self):
        with pytest.raises(ValueError):
            TraceConfig(tenants=0)
        with pytest.raises(ValueError):
            TraceConfig(tenant_skew=-0.1)


class TestTenantMix:
    def test_sums_to_one_and_is_skewed(self):
        mix = tenant_mix(TraceConfig(tenants=5, tenant_skew=1.1))
        assert sum(mix.values()) == pytest.approx(1.0)
        shares = list(mix.values())
        assert shares == sorted(shares, reverse=True)
        assert shares[0] > shares[-1]

    def test_zero_skew_is_uniform(self):
        mix = tenant_mix(TraceConfig(tenants=4, tenant_skew=0.0))
        assert all(v == pytest.approx(0.25) for v in mix.values())


class TestOfferedRate:
    def test_flash_window_multiplies_the_rate(self):
        config = TraceConfig(
            base_rate=100.0, diurnal_amplitude=0.0,
            flash_at=0.5, flash_len=0.25, flash_multiplier=4.0,
        )
        start, end = config.flash_window
        assert offered_rate(config, start - 0.01) == pytest.approx(100.0)
        assert offered_rate(config, (start + end) / 2) == pytest.approx(400.0)
        assert offered_rate(config, end + 0.01) == pytest.approx(100.0)

    def test_diurnal_cycle_breathes_around_the_base(self):
        config = TraceConfig(
            base_rate=100.0, diurnal_amplitude=0.5, diurnal_period_s=4.0,
            flash_multiplier=1.0,
        )
        assert offered_rate(config, 1.0) == pytest.approx(150.0)  # sin peak
        assert offered_rate(config, 3.0) == pytest.approx(50.0)  # sin trough


class TestGenerateTrace:
    def test_same_seed_replays_identically(self):
        config = TraceConfig(duration_s=2.0, base_rate=200.0, seed=7)
        assert generate_trace(config) == generate_trace(config)

    def test_different_seeds_differ(self):
        base = TraceConfig(duration_s=2.0, base_rate=200.0, seed=1)
        other = dataclasses.replace(base, seed=2)
        assert generate_trace(base) != generate_trace(other)

    def test_events_are_sorted_and_bounded(self):
        config = TraceConfig(duration_s=2.0, base_rate=300.0, seed=3)
        events = generate_trace(config)
        times = [e.at_s for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t <= config.duration_s for t in times)
        assert all(e.tenant.startswith("tenant-") for e in events)

    def test_flash_crowd_is_visible_in_the_stats(self):
        config = TraceConfig(
            duration_s=4.0, base_rate=400.0, seed=0,
            diurnal_amplitude=0.0, flash_multiplier=4.0,
        )
        stats = trace_stats(generate_trace(config), config)
        assert stats["flash_over_steady"] == pytest.approx(4.0, rel=0.25)
        assert stats["events"] > 0

    def test_stats_count_every_tenant(self):
        config = TraceConfig(duration_s=2.0, base_rate=300.0, tenants=3, seed=5)
        events = generate_trace(config)
        stats = trace_stats(events, config)
        assert sum(stats["per_tenant"].values()) == len(events)
        assert set(stats["per_tenant"]) == set(tenant_mix(config))
