"""Tests for the nn module system, layers and losses."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    Dropout,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Softmax,
    TapDispatcher,
    cross_entropy,
)
from repro.nn.init import ones, trunc_normal, xavier_uniform, zeros


class _Probe(TapDispatcher):
    def __init__(self):
        self.calls = []

    def tap(self, name, value):
        self.calls.append(name)
        return value


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))
                self.child = Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names

    def test_named_modules_paths(self):
        m = Sequential(Linear(2, 3), Linear(3, 2))
        names = [n for n, _ in m.named_modules()]
        assert "" in names and "0" in names and "1" in names

    def test_train_eval_recursive(self):
        m = Sequential(Dropout(0.5), Linear(2, 2))
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a, b = Linear(3, 4, rng=np.random.default_rng(1)), Linear(3, 4)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_missing_key_rejected(self):
        a = Linear(3, 4)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_rejected(self):
        a = Linear(3, 4)
        state = a.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_tap_dispatch_with_names(self):
        m = Sequential(Linear(2, 2))
        m.assign_tap_names(prefix="model.")
        probe = _Probe()
        m.set_tap_dispatcher(probe)
        m(Tensor(np.ones((1, 2))))
        assert "model.0.weight" in probe.calls
        assert "model.0.input" in probe.calls

    def test_tap_detach_restores_identity(self):
        m = Linear(2, 2)
        probe = _Probe()
        m.set_tap_dispatcher(probe)
        m.set_tap_dispatcher(None)
        m(Tensor(np.ones((1, 2))))
        assert probe.calls == []

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert ml[1] is list(ml)[1]
        assert len(dict(ml.named_parameters())) == 4


class TestLayers:
    def test_linear_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_layernorm_statistics(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(4, 8)).astype(np.float32) * 5))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-5)

    def test_gelu_softmax_modules(self, rng):
        x = Tensor(rng.normal(size=(2, 5)).astype(np.float32))
        assert GELU()(x).shape == (2, 5)
        np.testing.assert_allclose(Softmax()(x).data.sum(-1), np.ones(2), rtol=1e-5)

    def test_dropout_eval_is_identity(self, rng):
        d = Dropout(0.5, rng=rng)
        d.eval()
        x = rng.normal(size=(10,)).astype(np.float32)
        np.testing.assert_allclose(d(Tensor(x)).data, x)

    def test_dropout_train_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(10000, dtype=np.float32)))
        # Inverted dropout keeps the expectation ~1.
        assert abs(out.data.mean() - 1.0) < 0.05
        assert set(np.unique(out.data)) <= {0.0, 2.0}

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLoss:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-4

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        np.testing.assert_allclose(float(loss.data), np.log(10), rtol=1e-5)

    def test_label_smoothing_raises_floor(self):
        logits = Tensor(np.array([[100.0, 0.0]], dtype=np.float32))
        plain = cross_entropy(logits, np.array([0]))
        smoothed = cross_entropy(logits, np.array([0]), label_smoothing=0.1)
        assert float(smoothed.data) > float(plain.data)

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        grad = logits.grad[0]
        assert grad[1] < 0 and grad[0] > 0 and grad[2] > 0


class TestInit:
    def test_trunc_normal_bounds(self, rng):
        w = trunc_normal((1000,), rng, std=0.02)
        assert np.abs(w).max() <= 0.04 + 1e-6
        assert w.dtype == np.float32

    def test_xavier_range(self, rng):
        w = xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit + 1e-6

    def test_zeros_ones(self):
        assert zeros((2,)).sum() == 0
        assert ones((2,)).sum() == 2
