"""Tests for distribution analysis, attention rollout and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    FIGURE3_TENSORS,
    ascii_heatmap,
    ascii_histogram,
    attention_rollout,
    capture_figure3_tensors,
    crucial_region_energy,
    format_table,
    histogram,
    rollout_correlation,
    rollout_for_images,
)
from repro.quant import QUQQuantizer


class TestCaptureFigure3:
    def test_all_four_tensors_present(self, tiny_trained, calib_images):
        tensors = capture_figure3_tensors(tiny_trained, calib_images[:8])
        assert set(tensors) == set(FIGURE3_TENSORS)
        for value in tensors.values():
            assert value.size > 0

    def test_post_softmax_nonnegative(self, tiny_trained, calib_images):
        tensors = capture_figure3_tensors(tiny_trained, calib_images[:8])
        assert tensors["post_softmax"].min() >= 0

    def test_block_selects_different_layer(self, tiny_trained, calib_images):
        t0 = capture_figure3_tensors(tiny_trained, calib_images[:8], block=0)
        t1 = capture_figure3_tensors(tiny_trained, calib_images[:8], block=1)
        assert not np.array_equal(t0["pre_addition"], t1["pre_addition"])


class TestHistogramRendering:
    def test_histogram_counts_total(self, rng):
        data = rng.normal(size=500)
        counts, edges = histogram(data, bins=20)
        assert counts.sum() == 500
        assert len(edges) == 21

    def test_ascii_histogram_marks_quant_points(self, rng):
        data = rng.normal(size=2000)
        q = QUQQuantizer(4).fit(data)
        art = ascii_histogram(data, q.params, bins=30)
        assert "|" in art
        assert len(art.splitlines()) == 30


class TestAttentionRollout:
    def test_uniform_attention_gives_uniform_saliency(self):
        tokens = 5
        uniform = np.full((1, 2, tokens, tokens), 1.0 / tokens)
        saliency = attention_rollout([uniform, uniform])
        np.testing.assert_allclose(saliency, np.full((1, 4), 0.25), rtol=1e-9)

    def test_saliency_normalized(self, rng):
        attn = rng.dirichlet(np.ones(6), size=(2, 3, 6))  # (B,heads,N) rows
        attn = attn.reshape(2, 3, 6, 6)
        saliency = attention_rollout([attn])
        np.testing.assert_allclose(saliency.sum(-1), np.ones(2), rtol=1e-9)

    def test_empty_maps_rejected(self):
        with pytest.raises(ValueError):
            attention_rollout([])

    def test_rollout_for_images_shape(self, tiny_trained, calib_images):
        saliency = rollout_for_images(tiny_trained, calib_images[:4])
        assert saliency.shape == (4, 16)  # 4x4 patch grid at 16x16/patch 4


class TestComparisonMetrics:
    def test_identical_maps_full_energy_and_correlation(self, rng):
        ref = rng.dirichlet(np.ones(16), size=4)
        assert rollout_correlation(ref, ref) == pytest.approx(1.0)
        energy = crucial_region_energy(ref, ref, quantile=0.8)
        assert energy > 0.2  # hot cells hold a disproportionate share

    def test_collapsed_map_scores_lower(self, rng):
        ref = np.zeros((2, 16))
        ref[:, 0] = 0.9
        ref[:, 1:] = 0.1 / 15
        flat = np.full((2, 16), 1.0 / 16)
        assert crucial_region_energy(ref, flat, quantile=0.95) < crucial_region_energy(
            ref, ref, quantile=0.95
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rollout_correlation(np.zeros((1, 4)), np.zeros((1, 5)))
        with pytest.raises(ValueError):
            crucial_region_energy(np.zeros((1, 4)), np.zeros((1, 5)))


class TestAsciiHeatmap:
    def test_square_render(self):
        art = ascii_heatmap(np.linspace(0, 1, 16))
        assert len(art.splitlines()) == 4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(15))

    def test_constant_map_renders(self):
        art = ascii_heatmap(np.ones(16))
        assert len(art.splitlines()) == 4


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["name", "value"], [["a", 1.234567], ["bb", None]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in table
        assert "-" in lines[-1]

    def test_title_included(self):
        assert format_table(["x"], [[1]], title="Table 9").startswith("Table 9")

    def test_scientific_for_tiny_values(self):
        assert "e-" in format_table(["x"], [[1.2e-7]])
