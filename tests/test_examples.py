"""Smoke tests: the fast examples must run end to end.

Only the examples that need no trained zoo model run here (the others are
exercised by the benchmark harness, which shares their code paths).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "bit-exact" in out
        assert "x better" in out

    def test_accelerator_simulation(self, capsys):
        out = _run("accelerator_simulation.py", capsys)
        assert "bit-exact vs dequantized float GEMM: True" in out
        assert "headline" in out
        assert "Peak on-chip memory" in out
