"""Tests for the analytical area/power model (Table 4) and the memory
simulator (Figure 2)."""

import numpy as np
import pytest

from repro.hw import (
    AcceleratorSpec,
    adder_gates,
    build_vit_block_dataflow,
    evaluate,
    leading_zero_detector_gates,
    memory_table,
    multiplier_gates,
    mux_gates,
    peak_memory_bytes,
    register_gates,
    shifter_gates,
    table4,
)
from repro.models.configs import PAPER_CONFIGS


class TestGatePrimitives:
    def test_multiplier_quadratic_in_width(self):
        assert multiplier_gates(8, 8) == 4 * multiplier_gates(4, 4)

    def test_linear_primitives(self):
        assert adder_gates(32) == 2 * adder_gates(16)
        assert register_gates(16) == 2 * register_gates(8)

    def test_shifter_log_stages(self):
        assert shifter_gates(8, 7) == 3 * 8 * 3  # 3 stages for range 7
        assert shifter_gates(8, 1) == 3 * 8 * 1

    def test_validation(self):
        with pytest.raises(ValueError):
            multiplier_gates(0, 4)
        with pytest.raises(ValueError):
            adder_gates(0)
        with pytest.raises(ValueError):
            mux_gates(4, 1)
        with pytest.raises(ValueError):
            leading_zero_detector_gates(1)


class TestAreaPowerModel:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("tpu", 8, 16)
        with pytest.raises(ValueError):
            AcceleratorSpec("baseq", 1, 16)
        with pytest.raises(ValueError):
            AcceleratorSpec("baseq", 8, 0)

    def test_more_bits_more_area_and_power(self):
        for method in ("baseq", "quq"):
            six = evaluate(AcceleratorSpec(method, 6, 16))
            eight = evaluate(AcceleratorSpec(method, 8, 16))
            assert eight.area_mm2 > six.area_mm2
            assert eight.power_mw > six.power_mw

    def test_bigger_array_more_area(self):
        small = evaluate(AcceleratorSpec("baseq", 6, 16))
        big = evaluate(AcceleratorSpec("baseq", 6, 64))
        assert big.area_mm2 > 10 * small.area_mm2

    def test_quq_overhead_bounded(self):
        """Paper claim: QUQ adds modest area/power at equal bit-width."""
        for bits in (6, 8):
            for array in (16, 64):
                base = evaluate(AcceleratorSpec("baseq", bits, array))
                quq = evaluate(AcceleratorSpec("quq", bits, array))
                area_overhead = quq.area_mm2 / base.area_mm2 - 1
                power_overhead = quq.power_mw / base.power_mw - 1
                assert 0 < area_overhead < 0.15
                assert 0 < power_overhead < 0.15

    def test_overhead_shrinks_with_array_size(self):
        """Paper claim: edge units amortize over the n^2 PEs."""
        def overhead(array):
            base = evaluate(AcceleratorSpec("baseq", 6, array))
            quq = evaluate(AcceleratorSpec("quq", 6, array))
            return quq.area_mm2 / base.area_mm2

        assert overhead(64) < overhead(16)

    def test_6bit_quq_beats_8bit_baseq(self):
        """Paper claim: 6-bit QUQ is smaller and cooler than 8-bit BaseQ."""
        for array in (16, 64):
            base8 = evaluate(AcceleratorSpec("baseq", 8, array))
            quq6 = evaluate(AcceleratorSpec("quq", 6, array))
            assert quq6.area_mm2 < base8.area_mm2
            assert quq6.power_mw < base8.power_mw

    def test_absolute_calibration_near_paper(self):
        """BaseQ anchors: within 40% of the paper's synthesized numbers."""
        report = evaluate(AcceleratorSpec("baseq", 6, 16))
        assert 0.6 * 0.148 < report.area_mm2 < 1.4 * 0.148
        assert 0.6 * 52.4 < report.power_mw < 1.9 * 52.4

    def test_table4_layout(self):
        rows = table4()
        assert len(rows) == 4
        assert {"method", "bits", "area_mm2_16", "power_mw_64"} <= set(rows[0])


class TestMemorySimulator:
    def test_fq_never_exceeds_pq(self):
        for name in ("vit_s", "vit_l", "swin_t"):
            flow = build_vit_block_dataflow(PAPER_CONFIGS[name], batch=4)
            pq, _ = peak_memory_bytes(flow, "pq", 8)
            fq, _ = peak_memory_bytes(flow, "fq", 8)
            assert fq < pq

    def test_fp32_is_upper_bound(self):
        flow = build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], batch=1)
        fp, _ = peak_memory_bytes(flow, "fp32", 8)
        pq, _ = peak_memory_bytes(flow, "pq", 8)
        assert fp > pq

    def test_peak_grows_with_batch(self):
        flows = [build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], b) for b in (1, 4)]
        peaks = [peak_memory_bytes(f, "fq", 8)[0] for f in flows]
        assert peaks[1] > peaks[0]

    def test_pq_advantage_grows_with_batch(self):
        """Paper: larger batches raise the activation share, widening the gap."""
        def ratio(batch):
            flow = build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], batch)
            pq, _ = peak_memory_bytes(flow, "pq", 8)
            fq, _ = peak_memory_bytes(flow, "fq", 8)
            return pq / fq

        assert ratio(8) > ratio(1)

    def test_smaller_models_bigger_relative_gap(self):
        """Paper: full quantization matters most for small (edge) models."""
        def ratio(name):
            flow = build_vit_block_dataflow(PAPER_CONFIGS[name], batch=1)
            pq, _ = peak_memory_bytes(flow, "pq", 8)
            fq, _ = peak_memory_bytes(flow, "fq", 8)
            return pq / fq

        assert ratio("vit_s") > ratio("vit_l")

    def test_fewer_bits_less_memory(self):
        flow = build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], batch=1)
        six, _ = peak_memory_bytes(flow, "fq", 6)
        eight, _ = peak_memory_bytes(flow, "fq", 8)
        assert six < eight

    def test_swin_dataflow_uses_window_attention_shape(self):
        flow = build_vit_block_dataflow(PAPER_CONFIGS["swin_t"], batch=1)
        # Window attention matrices are much smaller than global NxN.
        tokens = (224 // 4) ** 2
        assert flow.tensors["scores"] < tokens * tokens

    def test_unknown_scheme_rejected(self):
        flow = build_vit_block_dataflow(PAPER_CONFIGS["vit_s"], batch=1)
        with pytest.raises(ValueError):
            peak_memory_bytes(flow, "int4", 8)

    def test_memory_table_rows(self):
        rows = memory_table([PAPER_CONFIGS["vit_s"]], batches=(1, 2))
        assert len(rows) == 2
        assert all(row["pq_over_fq"] > 1 for row in rows)

    def test_paper_overhead_range(self):
        """Abstract claim: PQ costs 22.3%-172.6% extra memory vs FQ."""
        rows = memory_table(
            [PAPER_CONFIGS[n] for n in ("vit_s", "vit_b", "vit_l")],
            batches=(1, 2, 4, 8),
        )
        overheads = [100 * (r["pq_over_fq"] - 1) for r in rows]
        assert min(overheads) > 20
        assert max(overheads) < 200
