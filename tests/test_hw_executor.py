"""Tests for the QUA block executor (integer path vs fake quantization)."""

import numpy as np
import pytest

from repro.autograd import Tensor, concat, no_grad
from repro.hw import BlockExecutor
from repro.quant import PTQPipeline


@pytest.fixture(scope="module")
def quq_pipeline(tiny_trained, calib_images):
    pipeline = PTQPipeline(tiny_trained, method="quq", bits=8, coverage="full")
    pipeline.calibrate(calib_images)
    yield pipeline
    pipeline.detach()


@pytest.fixture(scope="module")
def block_tokens(tiny_trained, calib_images, quq_pipeline):
    """Token features entering block 0, plus the fake-quant block output."""
    images = calib_images[:4]
    quq_pipeline.detach()
    with no_grad():
        patches = tiny_trained.patch_embed(Tensor(images))
        ones = Tensor(np.ones((4, 1, 1), dtype=np.float32))
        tokens = concat([ones * tiny_trained.cls_token, patches], axis=1)
        tokens = tokens + tiny_trained.pos_embed
    quq_pipeline.attach()
    with no_grad():
        fq_output = tiny_trained.blocks[0](tokens).data
    quq_pipeline.detach()
    return tokens.data.astype(np.float64), fq_output


class TestBlockExecutor:
    def test_requires_quq_pipeline(self, tiny_trained, calib_images):
        pipeline = PTQPipeline(tiny_trained, method="baseq", bits=8, coverage="full")
        pipeline.calibrate(calib_images)
        with pytest.raises(ValueError):
            BlockExecutor(tiny_trained.blocks[0], pipeline, "tiny_vit.blocks.0")
        pipeline.detach()

    def test_requires_calibration(self, tiny_trained):
        pipeline = PTQPipeline(tiny_trained, method="quq", bits=8, coverage="full")
        with pytest.raises(RuntimeError):
            BlockExecutor(tiny_trained.blocks[0], pipeline, "tiny_vit.blocks.0")

    def test_matches_fake_quantized_block(self, tiny_trained, quq_pipeline, block_tokens):
        tokens, fq_output = block_tokens
        executor = BlockExecutor(
            tiny_trained.blocks[0], quq_pipeline, "tiny_vit.blocks.0", bits=8
        )
        hw_output = executor.run(tokens)
        correlation = np.corrcoef(hw_output.reshape(-1), fq_output.reshape(-1))[0, 1]
        assert correlation > 0.999
        rel_err = np.abs(hw_output - fq_output).max() / np.abs(fq_output).max()
        assert rel_err < 0.05

    def test_integer_sfu_variant_close(self, tiny_trained, quq_pipeline, block_tokens):
        tokens, fq_output = block_tokens
        executor = BlockExecutor(
            tiny_trained.blocks[0], quq_pipeline, "tiny_vit.blocks.0", bits=8,
            integer_sfu=True,
        )
        hw_output = executor.run(tokens)
        correlation = np.corrcoef(hw_output.reshape(-1), fq_output.reshape(-1))[0, 1]
        assert correlation > 0.995

    def test_output_shape_preserved(self, tiny_trained, quq_pipeline, block_tokens):
        tokens, _ = block_tokens
        executor = BlockExecutor(
            tiny_trained.blocks[0], quq_pipeline, "tiny_vit.blocks.0", bits=8
        )
        assert executor.run(tokens).shape == tokens.shape


class TestModelExecutor:
    def test_whole_model_matches_fake_quant(
        self, tiny_trained, quq_pipeline, calib_images
    ):
        from repro.hw import ModelExecutor
        from repro.training import predict_logits

        images = calib_images[:8]
        quq_pipeline.attach()
        fq_logits = predict_logits(tiny_trained, images)
        executor = ModelExecutor(tiny_trained, quq_pipeline, bits=8)
        quq_pipeline.detach()
        hw_logits = executor.run(images.astype(np.float64))
        agreement = np.mean(fq_logits.argmax(-1) == hw_logits.argmax(-1))
        assert agreement >= 0.75
        correlation = np.corrcoef(fq_logits.reshape(-1), hw_logits.reshape(-1))[0, 1]
        assert correlation > 0.99

    def test_rejects_non_quq(self, tiny_trained, calib_images):
        from repro.hw import ModelExecutor

        pipeline = PTQPipeline(tiny_trained, method="baseq", bits=8, coverage="full")
        pipeline.calibrate(calib_images)
        with pytest.raises(ValueError):
            ModelExecutor(tiny_trained, pipeline)
        pipeline.detach()
