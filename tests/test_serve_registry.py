"""Tests for the serving model registry (LRU cache + warm start)."""

import numpy as np
import pytest

from repro.models.configs import ModelConfig
from repro.models.vit import build_vit
from repro.serve import ModelKey, ModelRegistry

TINY = ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)


def tiny_loader(name):
    # Serve-path tests run a deterministic tiny model regardless of the
    # requested zoo name, so nothing trains or hits the checkpoint cache.
    return build_vit(TINY, seed=0), 42.0


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=2,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


class TestModelKey:
    def test_parse_paper_and_zoo_names(self):
        assert ModelKey.parse("vit_s/quq/6").model == "vit_mini_s"
        assert ModelKey.parse("vit_mini_s/quq/6").model == "vit_mini_s"
        assert ModelKey.parse("vit_s/quq/6").coverage == "full"
        assert ModelKey.parse("vit_s/baseq/8/partial").coverage == "partial"

    @pytest.mark.parametrize("spec", [
        "vit_s", "vit_s/quq", "resnet50/quq/6", "vit_s/awq/6",
        "vit_s/quq/six", "vit_s/quq/6/most",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ModelKey.parse(spec)

    def test_spec_round_trip(self):
        key = ModelKey.parse("deit_s/biscaled/8/partial")
        assert ModelKey.parse(key.spec) == key

    @pytest.mark.parametrize("bits", ["1", "6", "16"])
    def test_bits_accepts_quantizable_range(self, bits):
        assert ModelKey.parse(f"vit_s/quq/{bits}").bits == int(bits)

    @pytest.mark.parametrize("bits", ["0", "17", "-4", "007", "+6", " 6", "6.0"])
    def test_bits_rejects_out_of_range_and_padded(self, bits):
        with pytest.raises(ValueError, match="bits"):
            ModelKey.parse(f"vit_s/quq/{bits}")

    def test_fp32_accepts_the_float_width(self):
        assert ModelKey.parse("vit_s/fp32/32").bits == 32
        with pytest.raises(ValueError, match="bits"):
            ModelKey.parse("vit_s/fp32/33")


class TestRegistryCache:
    def test_miss_then_hit(self, registry):
        first = registry.get("vit_s/quq/4")
        assert first.quantized and first.pipeline.calibrated
        second = registry.get("vit_s/quq/4")
        assert second is first
        snap = registry.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["calibrations"] == 1

    def test_distinct_specs_are_distinct_entries(self, registry):
        a = registry.get("vit_s/quq/4")
        b = registry.get("vit_s/quq/6")
        assert a is not b
        assert len(registry) == 2

    def test_lru_eviction(self, tmp_path, calib_images):
        registry = ModelRegistry(
            capacity=1, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
        )
        registry.get("vit_s/quq/4")
        registry.get("vit_s/baseq/4")
        assert "vit_s/quq/4" not in registry
        assert "vit_s/baseq/4" in registry
        assert registry.snapshot()["evictions"] == 1

    def test_fp32_method_serves_float(self, registry):
        servable = registry.get("vit_s/fp32/32")
        assert not servable.quantized
        assert servable.fallback_reason is None
        logits = servable.predict(np.zeros((2, 16, 16, 3), dtype=np.float32))
        assert logits.shape == (2, 10)


class TestWarmStart:
    def test_restart_skips_recalibration(self, tmp_path, calib_images):
        def make():
            return ModelRegistry(
                capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
                calib_provider=lambda: calib_images[:16],
            )

        images = calib_images[:4]
        cold = make()
        reference = cold.get("vit_s/quq/4").predict(images)
        assert cold.snapshot()["calibrations"] == 1
        assert cold.state_path(ModelKey.parse("vit_s/quq/4")).exists()

        warm = make()  # fresh registry, same artifact dir: a "restart"
        servable = warm.get("vit_s/quq/4")
        snap = warm.snapshot()
        assert snap["warm_loads"] == 1 and snap["calibrations"] == 0
        np.testing.assert_array_equal(servable.predict(images), reference)

    def test_corrupt_state_falls_back_to_calibration(self, tmp_path, calib_images):
        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
        )
        state = registry.state_path(ModelKey.parse("vit_s/quq/4"))
        state.parent.mkdir(parents=True, exist_ok=True)
        state.write_bytes(b"not an npz archive")
        servable = registry.get("vit_s/quq/4")
        assert servable.quantized
        assert registry.snapshot()["calibrations"] == 1

    def test_tampered_payload_is_rejected_by_checksum(self, tmp_path, calib_images):
        from repro.resilience import tamper_quantizer_state

        def make():
            return ModelRegistry(
                capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
                calib_provider=lambda: calib_images[:16],
            )

        cold = make()
        cold.get("vit_s/quq/4")
        state = cold.state_path(ModelKey.parse("vit_s/quq/4"))
        tamper_quantizer_state(state, seed=1)  # still a readable npz

        warm = make()
        servable = warm.get("vit_s/quq/4")  # reject + recalibrate, not serve
        assert servable.quantized
        snap = warm.snapshot()
        assert snap["checksum_rejects"] == 1
        assert snap["warm_loads"] == 0 and snap["calibrations"] == 1
        assert state.exists()  # recalibration re-serialized a clean artifact

    def test_legacy_checksumless_artifact_recalibrates(self, tmp_path, calib_images):
        # An artifact written before checksums existed cannot prove it is
        # uncorrupted, so the serving path must recalibrate (and thereby
        # upgrade it) instead of trusting it.
        import json

        def make():
            return ModelRegistry(
                capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
                calib_provider=lambda: calib_images[:16],
            )

        cold = make()
        cold.get("vit_s/quq/4")
        state = cold.state_path(ModelKey.parse("vit_s/quq/4"))
        with np.load(state, allow_pickle=False) as handle:
            payload = {name: handle[name] for name in handle.files}
        record = json.loads(str(payload["__meta__"][()]))
        record.pop("checksum", None)
        payload["__meta__"] = np.array(json.dumps(record))
        np.savez(state, **payload)

        warm = make()
        assert warm.get("vit_s/quq/4").quantized
        snap = warm.snapshot()
        assert snap["checksum_rejects"] == 1
        assert snap["warm_loads"] == 0 and snap["calibrations"] == 1
        # The recalibration re-saved a checksummed artifact; a third
        # registry warm-starts cleanly.
        upgraded = make()
        assert upgraded.get("vit_s/quq/4").quantized
        snap = upgraded.snapshot()
        assert snap["warm_loads"] == 1 and snap["calibrations"] == 0

    def test_invalidate_drops_cached_entry(self, registry):
        registry.get("vit_s/quq/4")
        assert registry.invalidate("vit_s/quq/4")
        assert "vit_s/quq/4" not in registry
        assert not registry.invalidate("vit_s/quq/4")  # already gone


class TestInvalidateUnderLoad:
    def test_mid_stream_invalidation_is_picked_up_next_batch(
        self, registry, tiny_data
    ):
        """Invalidating a lane's entry while the engine is serving it must
        not drop or corrupt requests: lanes resolve through registry.get
        on every batch, so the next batch serves a freshly built entry."""
        from repro.serve import BatchPolicy, ServeEngine

        _, val_set = tiny_data
        spec = "vit_s/quq/4"
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0, max_queue=64)
        with ServeEngine(registry, policy) as engine:
            engine.warm(spec)
            before = registry.get(spec)
            results = []
            for index, image in enumerate(val_set.images[:24]):
                if index == 12:
                    assert registry.invalidate(spec)
                    assert spec not in registry
                results.append(engine.submit(spec, image).result(timeout=30.0))
            after = registry.get(spec)

        assert after is not before  # the replacement took over mid-stream
        assert all(r.quantized for r in results)
        assert all(np.isfinite(r.logits).all() for r in results)
        snap = registry.snapshot()
        # One build at warm-up, one rebuild after the invalidation; the
        # second build may warm-start from the persisted artifact.
        assert snap["calibrations"] + snap["warm_loads"] == 2
        assert engine.snapshot()["counters"]["responses_total"] == 24


class TestLoadRetry:
    def test_transient_loader_failures_are_retried(self, tmp_path, calib_images):
        from repro.resilience import RetryPolicy

        calls = {"n": 0}

        def flaky_loader(name):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("checkpoint mid-write")
            return tiny_loader(name)

        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=flaky_loader,
            calib_provider=lambda: calib_images[:16],
            retry=RetryPolicy(attempts=4, backoff_s=0.0, sleep=lambda s: None),
        )
        assert registry.get("vit_s/quq/4").quantized
        snap = registry.snapshot()
        assert snap["retries"] == 2 and snap["load_failures"] == 0

    def test_exhausted_retries_raise_and_are_counted(self, tmp_path, calib_images):
        from repro.resilience import RetryPolicy

        def dead_loader(name):
            raise OSError("checkpoint gone")

        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=dead_loader,
            calib_provider=lambda: calib_images[:16],
            retry=RetryPolicy(attempts=3, backoff_s=0.0, sleep=lambda s: None),
        )
        with pytest.raises(OSError):
            registry.get("vit_s/quq/4")
        snap = registry.snapshot()
        assert snap["load_failures"] == 1 and snap["retries"] == 2
        assert len(registry) == 0  # nothing half-built was cached


class TestGracefulDegradation:
    def test_calibration_failure_degrades_to_float(self, tmp_path):
        def broken_calib():
            raise RuntimeError("calibration data unavailable")

        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=broken_calib,
        )
        servable = registry.get("vit_s/quq/6")
        assert not servable.quantized
        assert "calibration data unavailable" in servable.fallback_reason
        assert registry.snapshot()["fallbacks"] == 1
        # The float model still answers.
        logits = servable.predict(np.zeros((3, 16, 16, 3), dtype=np.float32))
        assert logits.shape == (3, 10)
