"""Tests for admission control: rate limits, shedding, fairness, ladder."""

import numpy as np
import pytest

from repro.resilience.breaker import CLOSED, OPEN
from repro.serve.admission import (
    REJECT_REASONS,
    AdmissionController,
    AdmissionPolicy,
    BreakerOpenError,
    Decision,
    FairShareTracker,
    LaneView,
    RateLimitedError,
    ShedError,
    TokenBucket,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def idle_lane(depth=0, capacity=64, breaker=CLOSED):
    return LaneView(queue_depth=depth, queue_capacity=capacity,
                    breaker_state=breaker)


class TestRejectReasons:
    def test_error_reasons_are_in_the_label_set(self):
        assert ShedError("x").reason in REJECT_REASONS
        assert RateLimitedError("x").reason in REJECT_REASONS
        assert BreakerOpenError("x").reason in REJECT_REASONS

    def test_shed_error_carries_ladder_level(self):
        assert ShedError("x", level=3).level == 3


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=5.0, clock=clock)
        assert all(bucket.try_take() for _ in range(5))
        assert not bucket.try_take()
        clock.advance(0.1)  # 1 token refilled
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_capacity_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        bucket.try_take()
        assert bucket.level() == pytest.approx(1.0)


class TestFairShareTracker:
    def test_window_eviction_keeps_counts_consistent(self):
        tracker = FairShareTracker(window=4)
        for tenant in ("a", "a", "b", "a", "b", "b"):
            tracker.record(tenant)
        # Window holds the last 4: b, a, b, b
        assert tracker.admitted("b") == 3 and tracker.admitted("a") == 1
        assert tracker.share("b") == pytest.approx(0.75)


class TestPolicyValidation:
    def test_rejects_unordered_fractions(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_queue_fraction=0.9, degrade_queue_fraction=0.5)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_weights={"a": 0.0})

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(rate_limit_rps=-1.0)


class TestDegradeLadder:
    def make(self, **overrides):
        clock = FakeClock()
        policy = AdmissionPolicy(**overrides)
        return AdmissionController(policy, clock=clock), clock

    def test_level0_admits_everything(self):
        ctrl, _ = self.make()
        for _ in range(100):
            assert ctrl.decide("t", idle_lane(depth=0)).admitted

    def test_levels_follow_queue_depth(self):
        ctrl, _ = self.make()
        # Defaults: shed 0.6, degrade 0.8, reject 0.95 of capacity 64.
        assert ctrl.decide("t", idle_lane(depth=0)).level == 0
        assert ctrl.decide("t", idle_lane(depth=40)).level == 1
        assert ctrl.decide("t", idle_lane(depth=52)).level == 2
        assert ctrl.decide("t", idle_lane(depth=61)).level == 3

    def test_level2_admits_are_forced_to_float(self):
        ctrl, _ = self.make()
        decisions = [ctrl.decide("t", idle_lane(depth=52)) for _ in range(8)]
        admitted = [d for d in decisions if d.admitted]
        assert admitted and all(d.force_float for d in admitted)

    def test_level3_sheds_everyone_but_starved_tenants(self):
        ctrl, _ = self.make()
        first = ctrl.decide("fresh", idle_lane(depth=63))
        assert first.admitted  # starvation guard: no recent admissions
        later = [ctrl.decide("fresh", idle_lane(depth=63)) for _ in range(10)]
        assert not any(d.admitted for d in later)
        assert all(isinstance(d.error, ShedError) for d in later)

    def test_open_breaker_under_pressure_rejects(self):
        ctrl, _ = self.make()
        decision = ctrl.decide("t", idle_lane(depth=40, breaker=OPEN))
        assert not decision.admitted and decision.reason == "breaker_open"
        assert isinstance(decision.error, BreakerOpenError)

    def test_open_breaker_without_pressure_admits(self):
        ctrl, _ = self.make()
        assert ctrl.decide("t", idle_lane(depth=0, breaker=OPEN)).admitted

    def test_p99_latency_escalates_the_ladder(self):
        clock = FakeClock()
        policy = AdmissionPolicy(p99_target_ms=100.0)
        ctrl = AdmissionController(policy, clock=clock, p99_probe=lambda: 300.0)
        # 300ms >= 100 * 2.5 -> level 3 even with an empty queue.
        decision = ctrl.decide("a", idle_lane(depth=0))
        assert decision.level == 3

    def test_p99_probe_is_cached_between_refreshes(self):
        calls = []

        def probe():
            calls.append(1)
            return 0.0

        clock = FakeClock()
        policy = AdmissionPolicy(p99_target_ms=100.0, latency_refresh_s=1.0)
        ctrl = AdmissionController(policy, clock=clock, p99_probe=probe)
        for _ in range(10):
            ctrl.decide("a", idle_lane())
        assert len(calls) == 1
        clock.advance(1.5)
        ctrl.decide("a", idle_lane())
        assert len(calls) == 2

    def test_broken_probe_does_not_block_admits(self):
        def probe():
            raise RuntimeError("histogram gone")

        policy = AdmissionPolicy(p99_target_ms=100.0)
        ctrl = AdmissionController(policy, clock=FakeClock(), p99_probe=probe)
        assert ctrl.decide("a", idle_lane()).admitted


class TestRateLimit:
    def test_over_rate_traffic_is_rate_limited_not_shed(self):
        clock = FakeClock()
        policy = AdmissionPolicy(rate_limit_rps=10.0, burst_s=0.5)
        ctrl = AdmissionController(policy, clock=clock)
        verdicts = [ctrl.decide("t", idle_lane()) for _ in range(10)]
        admitted = sum(d.admitted for d in verdicts)
        limited = [d for d in verdicts if not d.admitted]
        assert admitted == 5  # burst capacity 10 * 0.5
        assert all(d.reason == "rate_limited" for d in limited)
        assert all(isinstance(d.error, RateLimitedError) for d in limited)

    def test_tokens_refill_with_time(self):
        clock = FakeClock()
        policy = AdmissionPolicy(rate_limit_rps=10.0, burst_s=0.1)
        ctrl = AdmissionController(policy, clock=clock)
        assert ctrl.decide("t", idle_lane()).admitted
        assert not ctrl.decide("t", idle_lane()).admitted
        clock.advance(0.2)
        assert ctrl.decide("t", idle_lane()).admitted


class TestWeightedFairness:
    def test_over_share_tenant_absorbs_the_shedding(self):
        clock = FakeClock()
        policy = AdmissionPolicy(
            tenant_weights={"heavy": 1.0, "light": 1.0},
            fairness_slack=1.2,
            starvation_guard=1,
        )
        ctrl = AdmissionController(policy, clock=clock)
        # Fill the window with heavy-tenant admissions at level 0.
        for _ in range(50):
            ctrl.decide("heavy", idle_lane(depth=0))
        ctrl.decide("light", idle_lane(depth=0))
        # Under shed pressure the over-share tenant is refused while the
        # in-share tenant keeps a positive admit rate.
        heavy = [ctrl.decide("heavy", idle_lane(depth=40)) for _ in range(20)]
        light = [ctrl.decide("light", idle_lane(depth=40)) for _ in range(20)]
        assert not any(d.admitted for d in heavy)
        assert sum(d.admitted for d in light) > 10

    def test_deterministic_shed_pattern(self):
        def run():
            ctrl = AdmissionController(AdmissionPolicy(), clock=FakeClock())
            return [ctrl.decide("t", idle_lane(depth=40)).admitted
                    for _ in range(64)]

        assert run() == run()
        assert 0 < sum(run()) < 64  # partial shedding, not all-or-nothing

    def test_weight_share_includes_seen_tenants(self):
        ctrl = AdmissionController(
            AdmissionPolicy(tenant_weights={"a": 3.0, "b": 1.0}),
            clock=FakeClock(),
        )
        assert ctrl.weight_share("a") == pytest.approx(0.75)
        ctrl.decide("c", idle_lane())  # unseen tenant at default weight 1
        assert ctrl.weight_share("a") == pytest.approx(0.6)


class TestSnapshot:
    def test_snapshot_reports_stats_and_level(self):
        ctrl = AdmissionController(
            AdmissionPolicy(rate_limit_rps=1.0, burst_s=1.0), clock=FakeClock()
        )
        ctrl.decide("t", idle_lane())
        ctrl.decide("t", idle_lane())  # rate limited
        snap = ctrl.snapshot()
        assert snap["admitted"] == 1 and snap["rate_limited"] == 1
        assert snap["bucket_tokens"] is not None
        assert snap["window_admits"] == {"t": 1}


class FakeAdmission:
    """Minimal stand-in for AdmissionController in engine wiring tests."""

    def __init__(self, decision):
        self.decision = decision
        self.policy = AdmissionPolicy(degrade_hold_s=100.0)
        self.probe = None

    def attach_latency_probe(self, probe):
        self.probe = probe

    def decide(self, tenant, lane, now=None, priority="batch"):
        return self.decision

    def snapshot(self):
        return {"stub": True}


class TestEngineIntegration:
    @pytest.fixture
    def registry(self, tmp_path, calib_images):
        from repro.serve import ModelRegistry
        from tests.test_serve_registry import tiny_loader

        return ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
        )

    def test_refusal_raises_typed_error_and_counts_reason(self, registry):
        from repro.serve import BatchPolicy, ServeEngine

        admission = FakeAdmission(Decision(
            admitted=False, reason="shed", error=ShedError("overload", level=1),
        ))
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)
        with ServeEngine(registry, policy, admission=admission) as engine:
            engine.warm("vit_s/quq/4")
            image = np.zeros((16, 16, 3), dtype=np.float32)
            with pytest.raises(ShedError):
                engine.submit("vit_s/quq/4", image, tenant="t")
            counters = engine.snapshot()["counters"]
        assert counters["rejected_total"] == 1
        assert counters['rejections_total{reason="shed"}'] == 1
        assert counters.get("requests_total", 0) == 0

    def test_force_float_decision_degrades_the_lane(self, registry):
        from repro.serve import BatchPolicy, ServeEngine

        admission = FakeAdmission(Decision(admitted=True, force_float=True))
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)
        with ServeEngine(registry, policy, admission=admission) as engine:
            engine.warm("vit_s/quq/4")
            image = np.zeros((16, 16, 3), dtype=np.float32)
            result = engine.submit("vit_s/quq/4", image, tenant="t").result(
                timeout=30.0
            )
            counters = engine.snapshot()["counters"]
        assert result.quantized is False
        assert counters["degraded_batches_total"] >= 1

    def test_probe_is_wired_to_the_e2e_histogram(self, registry):
        from repro.serve import BatchPolicy, ServeEngine

        admission = FakeAdmission(Decision(admitted=True))
        with ServeEngine(
            registry, BatchPolicy(max_batch_size=4, max_wait_ms=2.0),
            admission=admission,
        ) as engine:
            assert admission.probe is not None
            assert admission.probe() == 0.0  # empty histogram

    def test_real_controller_rate_limits_submits(self, registry):
        from repro.serve import BatchPolicy, ServeEngine

        admission = AdmissionController(
            AdmissionPolicy(rate_limit_rps=1.0, burst_s=1.0)
        )
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)
        with ServeEngine(registry, policy, admission=admission) as engine:
            engine.warm("vit_s/quq/4")
            image = np.zeros((16, 16, 3), dtype=np.float32)
            first = engine.submit("vit_s/quq/4", image, tenant="t")
            with pytest.raises(RateLimitedError):
                engine.submit("vit_s/quq/4", image, tenant="t")
            first.result(timeout=30.0)
            snap = engine.snapshot()
        assert snap["counters"]['rejections_total{reason="rate_limited"}'] == 1
        assert snap["admission"]["rate_limited"] == 1
