"""Tests for the command-line interface (offline commands only).

The model-dependent commands (``quantize``/``export``/``inspect``) pull
from the trained zoo and are exercised by the benchmark harness; here we
cover the parser wiring and the purely analytical commands.
"""

import pytest

from repro.cli import build_parser, cmd_memory, cmd_table4


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize", "vit_mini_s"])
        assert args.method == "quq"
        assert args.bits == 6
        assert args.coverage == "full"

    def test_quantize_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "resnet50"])

    def test_quantize_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "vit_mini_s", "--method", "awq"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("zoo", "quantize", "export", "table4", "memory", "inspect"):
            # Should parse without SystemExit for arg-free commands…
            if command in ("zoo", "table4", "memory"):
                args = parser.parse_args([command])
                assert callable(args.fn)


class TestAnalyticalCommands:
    def test_table4_prints(self, capsys):
        cmd_table4(build_parser().parse_args(["table4"]))
        out = capsys.readouterr().out
        assert "quq" in out and "mm^2" in out

    def test_memory_prints(self, capsys):
        cmd_memory(build_parser().parse_args(["memory", "--bits", "6"]))
        out = capsys.readouterr().out
        assert "vit_l" in out and "overhead" in out
