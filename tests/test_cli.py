"""Tests for the command-line interface (offline commands only).

The model-dependent commands (``quantize``/``export``/``inspect``) pull
from the trained zoo and are exercised by the benchmark harness; here we
cover the parser wiring and the purely analytical commands.
"""

import pytest

from repro.cli import build_parser, cmd_memory, cmd_table4


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize", "vit_mini_s"])
        assert args.method == "quq"
        assert args.bits == 6
        assert args.coverage == "full"

    def test_quantize_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "resnet50"])

    def test_quantize_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "vit_mini_s", "--method", "awq"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("zoo", "quantize", "export", "table4", "memory",
                        "inspect", "serve-bench", "chaos-soak", "fault-sweep",
                        "corruption-sweep"):
            # Should parse without SystemExit for arg-free commands…
            if command in ("zoo", "table4", "memory", "serve-bench",
                           "chaos-soak", "fault-sweep", "corruption-sweep"):
                args = parser.parse_args([command])
                assert callable(args.fn)

    def test_repro_flags_threaded_through_model_commands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["quantize", "vit_mini_s", "--seed", "3", "--batch-size", "16"]
        )
        assert args.seed == 3 and args.batch_size == 16
        for argv in (
            ["export", "vit_mini_s", "out.npz", "--seed", "5"],
            ["inspect", "vit_mini_s", "--seed", "5"],
            ["serve-bench", "--seed", "5"],
        ):
            assert parser.parse_args(argv).seed == 5
        # Defaults preserve the historical sampling behaviour.
        assert parser.parse_args(["quantize", "vit_mini_s"]).seed is None

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.model == "vit_s"
        assert args.method == "quq"
        assert args.bits == 6
        assert args.requests == 256
        assert args.max_batch == 8
        assert args.workers == 1

    def test_chaos_soak_defaults(self):
        args = build_parser().parse_args(["chaos-soak"])
        assert args.model == "vit_s" and args.method == "quq" and args.bits == 6
        assert args.requests == 192 and args.rate == 150.0
        assert args.floor == 0.5 and args.horizon == 12 and args.spike == 16
        assert args.queue == 64 and args.output is None and not args.json
        assert callable(args.fn)

    def test_chaos_soak_flags(self):
        args = build_parser().parse_args([
            "chaos-soak", "--model", "deit_s", "--requests", "64",
            "--rate", "80", "--floor", "0.8", "--seed", "9",
            "--output", "report.json", "--json",
        ])
        assert args.model == "deit_s" and args.requests == 64
        assert args.rate == 80.0 and args.floor == 0.8 and args.seed == 9
        assert args.output == "report.json" and args.json

    def test_fault_sweep_defaults(self):
        args = build_parser().parse_args(["fault-sweep"])
        assert args.model == "vit_mini_s" and args.bits == 8
        assert args.ber is None and args.sites is None
        assert args.images == 32 and args.sweep_batch == 4
        assert args.floor == 0.75 and args.array == 16
        assert args.output is None and not args.json
        assert callable(args.fn)

    def test_fault_sweep_flags(self):
        args = build_parser().parse_args([
            "fault-sweep", "--ber", "1e-3", "--ber", "1e-2",
            "--sites", "qub", "all", "--images", "8", "--floor", "0.9",
            "--no-hessian", "--seed", "4", "--json",
        ])
        assert args.ber == [1e-3, 1e-2]
        assert args.sites == ["qub", "all"]
        assert args.images == 8 and args.floor == 0.9
        assert args.no_hessian and args.seed == 4 and args.json

    def test_fault_sweep_rejects_bad_site(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fault-sweep", "--sites", "dram"])

    def test_corruption_sweep_defaults(self):
        args = build_parser().parse_args(["corruption-sweep"])
        assert args.model == "vit_mini_s" and args.bits == 6
        assert args.methods == ["fp32", "quq", "baseq", "biscaled", "ptq4vit"]
        assert args.corruptions is None and args.severities == [1, 3, 5]
        assert args.images == 128 and not args.recovery
        assert args.recovery_corruption == "gaussian_noise"
        assert args.recovery_severity == 3
        assert args.output is None and not args.json
        assert callable(args.fn)

    def test_corruption_sweep_flags(self):
        args = build_parser().parse_args([
            "corruption-sweep", "--methods", "quq", "baseq",
            "--corruptions", "blur", "occlusion", "--severities", "2", "4",
            "--bits", "4", "--images", "64", "--recovery",
            "--recovery-severity", "5", "--seed", "3", "--json",
        ])
        assert args.methods == ["quq", "baseq"]
        assert args.corruptions == ["blur", "occlusion"]
        assert args.severities == [2, 4] and args.bits == 4
        assert args.images == 64 and args.recovery
        assert args.recovery_severity == 5 and args.seed == 3 and args.json

    def test_corruption_sweep_rejects_bad_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corruption-sweep", "--methods", "awq"])

    def test_serve_bench_policy_flags(self):
        args = build_parser().parse_args([
            "serve-bench", "--model", "deit_s", "--method", "baseq",
            "--max-batch", "16", "--max-wait-ms", "2.5", "--queue", "32",
            "--timeout-ms", "500", "--rate", "50", "--json",
        ])
        assert args.model == "deit_s" and args.method == "baseq"
        assert args.max_batch == 16 and args.max_wait_ms == 2.5
        assert args.queue == 32 and args.timeout_ms == 500.0
        assert args.rate == 50.0 and args.json


class TestAnalyticalCommands:
    def test_table4_prints(self, capsys):
        cmd_table4(build_parser().parse_args(["table4"]))
        out = capsys.readouterr().out
        assert "quq" in out and "mm^2" in out

    def test_memory_prints(self, capsys):
        cmd_memory(build_parser().parse_args(["memory", "--bits", "6"]))
        out = capsys.readouterr().out
        assert "vit_l" in out and "overhead" in out
