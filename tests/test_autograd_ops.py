"""Tests for composite/structural autograd operations."""

import numpy as np
import pytest
from scipy.special import erf as scipy_erf

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    erf,
    gelu,
    layer_norm,
    log_softmax,
    masked_fill,
    pad2d,
    relu,
    roll,
    softmax,
    stack,
    straight_through,
    take,
    unfold_patches,
)


class TestActivations:
    def test_erf_matches_scipy(self, rng):
        x = rng.normal(size=(5,)).astype(np.float32)
        np.testing.assert_allclose(erf(Tensor(x)).data, scipy_erf(x), rtol=1e-5)

    def test_erf_grads(self, rng):
        check_gradients(lambda a: erf(a), [rng.normal(size=(5,))])

    def test_gelu_known_values(self):
        out = gelu(Tensor([0.0, 100.0, -100.0]))
        np.testing.assert_allclose(out.data, [0.0, 100.0, 0.0], atol=1e-5)

    def test_gelu_grads(self, rng):
        check_gradients(lambda a: gelu(a), [rng.normal(size=(6,))])

    def test_relu_values_and_grads(self, rng):
        np.testing.assert_allclose(relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])
        check_gradients(lambda a: relu(a), [rng.normal(size=(6,)) + 0.1])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(3, 7))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5)).astype(np.float32)
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        # float32 resolution at +100 bounds how exact the shift can be
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_softmax_grads(self, rng):
        check_gradients(lambda a: softmax(a, axis=-1), [rng.normal(size=(2, 4))])

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(2, 5)).astype(np.float32))
        np.testing.assert_allclose(
            np.exp(log_softmax(x).data), softmax(x).data, rtol=1e-5
        )

    def test_log_softmax_grads(self, rng):
        check_gradients(lambda a: log_softmax(a, axis=-1), [rng.normal(size=(2, 4))])


class TestLayerNorm:
    def test_output_statistics(self, rng):
        x = Tensor(rng.normal(size=(4, 8)).astype(np.float32) * 3 + 1)
        out = layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_applied(self, rng):
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32))
        out = layer_norm(x, Tensor(np.full(4, 2.0)), Tensor(np.full(4, 5.0)))
        base = layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.data, base.data * 2.0 + 5.0, rtol=1e-5)

    def test_grads_all_inputs(self, rng):
        check_gradients(
            lambda x, w, b: layer_norm(x, w, b),
            [rng.normal(size=(2, 3, 6)), rng.normal(size=(6,)), rng.normal(size=(6,))],
        )


class TestStructural:
    def test_concat_values_and_grads(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = concat([Tensor(a), Tensor(b)], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda x, y: concat([x, y], axis=0), [a, b])

    def test_stack_grads(self, rng):
        check_gradients(
            lambda x, y: stack([x, y], axis=1),
            [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))],
        )

    def test_pad2d_shape_and_grads(self, rng):
        x = rng.normal(size=(1, 4, 5, 2))
        out = pad2d(Tensor(x), (1, 2, 0, 3))
        assert out.shape == (1, 7, 8, 2)
        check_gradients(lambda a: pad2d(a, (1, 2, 0, 3)), [x])

    def test_roll_inverse_and_grads(self, rng):
        x = rng.normal(size=(1, 4, 4, 2))
        rolled = roll(Tensor(x), (1, -2), (1, 2))
        back = roll(rolled, (-1, 2), (1, 2))
        np.testing.assert_allclose(back.data, x.astype(np.float32))
        check_gradients(lambda a: roll(a, (1, -2), (1, 2)), [x])

    def test_take_gathers_and_accumulates(self):
        table = Tensor(np.array([[1.0], [2.0], [3.0]]), requires_grad=True)
        out = take(table, np.array([0, 0, 2]))
        np.testing.assert_allclose(out.data, [[1.0], [1.0], [3.0]])
        out.backward(np.ones((3, 1), dtype=np.float32))
        np.testing.assert_allclose(table.grad, [[2.0], [0.0], [1.0]])

    def test_masked_fill_values_and_blocked_grads(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        mask = np.array([False, True, False])
        out = masked_fill(x, mask, -100.0)
        np.testing.assert_allclose(out.data, [1.0, -100.0, 3.0])
        out.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_unfold_patches_roundtrip_content(self):
        # A 2x2 patching of a 4x4 single-channel image keeps all pixels.
        img = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = unfold_patches(Tensor(img), 2)
        assert out.shape == (1, 4, 4)
        np.testing.assert_allclose(sorted(out.data.reshape(-1)), np.arange(16))

    def test_unfold_rejects_indivisible(self):
        with pytest.raises(ValueError):
            unfold_patches(Tensor(np.zeros((1, 5, 5, 1))), 2)

    def test_unfold_grads(self, rng):
        check_gradients(lambda a: unfold_patches(a, 2), [rng.normal(size=(1, 4, 4, 2))])


class TestStraightThrough:
    def test_forward_transforms(self):
        out = straight_through(Tensor([1.2, 2.7]), np.round)
        np.testing.assert_allclose(out.data, [1.0, 3.0])

    def test_backward_is_identity(self):
        x = Tensor([1.2, 2.7], requires_grad=True)
        out = straight_through(x, np.round)
        out.backward(np.array([5.0, 7.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [5.0, 7.0])

    def test_shape_change_rejected(self):
        with pytest.raises(ValueError):
            straight_through(Tensor([1.0, 2.0]), lambda d: d[:1])
