"""Tests for attention, MLP and transformer blocks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Mlp, MultiHeadSelfAttention, TransformerBlock
from repro.nn.module import TapDispatcher


class _Collector(TapDispatcher):
    def __init__(self):
        self.names = []

    def tap(self, name, value):
        self.names.append(name)
        return value


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32)))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_attention_rows_normalized(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        attn(Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32)))
        probs = attn.last_attention
        assert probs.shape == (1, 2, 4, 4)
        np.testing.assert_allclose(probs.sum(-1), np.ones((1, 2, 4)), rtol=1e-5)

    def test_gradients_flow_to_qkv(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32)))
        out.sum().backward()
        assert attn.qkv.weight.grad is not None
        assert np.abs(attn.qkv.weight.grad).max() > 0

    def test_permutation_equivariance(self, rng):
        # Self-attention without positional info commutes with permutation.
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        attn.eval()
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        perm = np.array([3, 1, 4, 0, 2])
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-4)


class TestMlp:
    def test_shape_and_hidden_dim(self, rng):
        mlp = Mlp(8, 32, rng=rng)
        assert mlp.fc1.out_features == 32
        out = mlp(Tensor(rng.normal(size=(2, 3, 8)).astype(np.float32)))
        assert out.shape == (2, 3, 8)


class TestTransformerBlock:
    def test_forward_shape(self, rng):
        block = TransformerBlock(16, 4, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32)))
        assert out.shape == (2, 5, 16)

    def test_residual_identity_at_zero_weights(self, rng):
        block = TransformerBlock(8, 2, rng=rng)
        # Zero the branch output projections: block must become identity.
        block.attn.proj.weight.data[:] = 0
        block.attn.proj.bias.data[:] = 0
        block.mlp.fc2.weight.data[:] = 0
        block.mlp.fc2.bias.data[:] = 0
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        np.testing.assert_allclose(block(Tensor(x)).data, x, atol=1e-6)

    def test_emits_expected_taps(self, rng):
        block = TransformerBlock(8, 2, rng=rng)
        block.assign_tap_names(prefix="blk.")
        collector = _Collector()
        block.set_tap_dispatcher(collector)
        block(Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32)))
        expected = {
            "blk.block_input",
            "blk.mid_input",
            "blk.attn_residual",
            "blk.mlp_residual",
            "blk.attn.q",
            "blk.attn.k",
            "blk.attn.v",
            "blk.attn.scores",
            "blk.attn.probs",
            "blk.attn.qkv.weight",
            "blk.attn.qkv.input",
            "blk.attn.proj.weight",
            "blk.attn.proj.input",
            "blk.mlp.fc1.input",
            "blk.mlp.fc2.input",
            "blk.mlp.act.input",
        }
        assert expected <= set(collector.names)
