"""Tests for the serving metrics layer."""

import json
import threading

import numpy as np
import pytest

from repro.serve import Counter, Distribution, Histogram, Metrics


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments(self):
        counter = Counter()

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestDistribution:
    def test_counts_per_value(self):
        dist = Distribution()
        for size in (1, 4, 4, 8, 8, 8):
            dist.observe(size)
        assert dist.snapshot() == {"1": 1, "4": 2, "8": 3}
        assert dist.total == 6


class TestHistogram:
    def test_exact_quantiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p99"] == pytest.approx(np.percentile(np.arange(1, 101), 99))
        assert snap["min"] == 1.0 and snap["max"] == 100.0

    def test_empty_snapshot(self):
        assert Histogram().snapshot()["count"] == 0

    def test_reservoir_keeps_exact_count_and_bounded_memory(self):
        histogram = Histogram(max_samples=100, seed=0)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) == 100
        # The subsample still spans the distribution.
        assert histogram.percentile(50) == pytest.approx(500, abs=150)


class TestHistogramStreamStats:
    def test_min_max_exact_under_reservoir_eviction(self):
        # Stream min/max must survive even when reservoir sampling evicts
        # the extreme samples: observe the extremes first, then flood.
        histogram = Histogram(max_samples=8, seed=0)
        histogram.observe(-123.5)
        histogram.observe(987.25)
        for value in range(500):
            histogram.observe(50.0 + (value % 7))
        snap = histogram.snapshot()
        assert snap["count"] == 502
        assert snap["min"] == -123.5
        assert snap["max"] == 987.25
        # The extremes were almost surely evicted from the tiny reservoir;
        # the exact-stream fields must not depend on that.
        assert histogram.percentile(50) == pytest.approx(53.0, abs=4)

    def test_max_samples_validated(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram(max_samples=0)

    def test_reset_clears_stream_and_reservoir(self):
        histogram = Histogram(max_samples=4)
        for value in (3.0, -1.0, 9.0):
            histogram.observe(value)
        histogram.reset()
        snap = histogram.snapshot()
        assert snap == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
        histogram.observe(2.5)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 2.5 and snap["max"] == 2.5

    def test_nonempty_stream_with_empty_reservoir_degrades_to_mean(self):
        # Cannot arise through observe()/reset(); simulated directly to pin
        # the documented degradation: percentiles fall back to the stream
        # mean instead of reporting 0.0 for a population that isn't empty.
        histogram = Histogram(max_samples=4)
        for value in (2.0, 4.0):
            histogram.observe(value)
        histogram._samples.clear()
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["mean"] == 3.0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 3.0


class TestMetricsRegistry:
    def test_instruments_are_singletons_by_name(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("h") is metrics.histogram("h")
        assert metrics.distribution("d") is metrics.distribution("d")

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.counter("requests_total").inc(3)
        metrics.histogram("latency_ms").observe(1.25)
        metrics.distribution("batch_size").observe(4)
        text = metrics.to_json(extra={"registry": {"hit_rate": 0.5}})
        snap = json.loads(text)
        assert snap["counters"]["requests_total"] == 3
        assert snap["histograms"]["latency_ms"]["count"] == 1
        assert snap["distributions"]["batch_size"] == {"4": 1}
        assert snap["registry"]["hit_rate"] == 0.5


class TestEngineCounterLabelParity:
    """Every ``*_total`` family the engine maintains must keep its global
    counter equal to the sum of its per-spec labelled children — a global
    increment without the matching labelled increment (the old
    ``requests_total`` bug) breaks per-model accounting silently."""

    FAMILIES = (
        "requests_total",
        "rejected_total",
        "errors_total",
        "failovers_total",
        "guard_trips_total",
    )

    def test_global_equals_sum_of_per_spec(self, tmp_path, calib_images, tiny_data):
        from repro.serve import BatchPolicy, ModelRegistry, ServeEngine
        from tests.test_serve_registry import tiny_loader

        _, val_set = tiny_data
        registry = ModelRegistry(
            capacity=2,
            artifact_dir=tmp_path,
            loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
        )
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0, max_queue=64)
        specs = ("vit_s/quq/4", "vit_s/baseq/6")
        with ServeEngine(registry, policy) as engine:
            for spec in specs:
                engine.warm(spec)
            handles = [
                engine.submit(specs[i % len(specs)], image)
                for i, image in enumerate(val_set.images[:10])
            ]
            for handle in handles:
                handle.result(timeout=30.0)
        counters = engine.snapshot()["counters"]

        for family in self.FAMILIES:
            labelled_sum = sum(
                value
                for name, value in counters.items()
                if name.startswith(family + "{") and 'spec="' in name
            )
            assert counters.get(family, 0) == labelled_sum, family

        # The accepted traffic must show up per-spec, not just globally.
        per_spec_requests = {
            name: value
            for name, value in counters.items()
            if name.startswith('requests_total{spec="')
        }
        assert len(per_spec_requests) == len(specs)
        assert sum(per_spec_requests.values()) == 10


class TestRejectionReasonLabelParity:
    """Every refusal funnels through ``_count_rejection``, which must keep
    three views in lockstep: the unlabelled ``rejected_total``, the
    per-reason ``rejections_total{reason=...}`` counters, and their
    per-spec children — so dashboards can slice rejections by cause
    without the totals drifting apart."""

    SCRIPT = (
        ("vit_mini_s/quq/6/full", "shed"),
        ("vit_mini_s/quq/6/full", "shed"),
        ("vit_mini_s/quq/4/full", "queue_full"),
        ("vit_mini_s/quq/6/full", "timeout"),
        ("vit_mini_s/quq/4/full", "rate_limited"),
        ("vit_mini_s/quq/6/full", "breaker_open"),
        ("vit_mini_s/quq/4/full", "shed"),
        ("vit_mini_s/quq/6/full", "deadline"),
    )

    def _assert_parity(self, counters):
        from repro.serve import REJECT_REASONS

        assert counters["rejected_total"] == len(self.SCRIPT)
        reason_total = 0
        for reason in REJECT_REASONS:
            global_name = f'rejections_total{{reason="{reason}"}}'
            child_sum = sum(
                value
                for name, value in counters.items()
                if name.startswith(f'rejections_total{{reason="{reason}",spec="')
            )
            assert counters.get(global_name, 0) == child_sum, reason
            reason_total += counters.get(global_name, 0)
        # Every rejection carries exactly one reason label.
        assert reason_total == counters["rejected_total"]
        # Only documented reasons ever appear on the family.
        used = {
            name.split('reason="', 1)[1].split('"', 1)[0]
            for name in counters
            if name.startswith("rejections_total{")
        }
        assert used == set(REJECT_REASONS)

    def test_thread_engine_keeps_reason_parity(self):
        from repro.serve import ServeEngine

        engine = ServeEngine()
        for spec, reason in self.SCRIPT:
            engine._count_rejection(spec, reason)
        self._assert_parity(engine.snapshot()["counters"])

    def test_cluster_engine_keeps_reason_parity(self):
        from repro.serve import ClusterEngine

        engine = ClusterEngine()
        for spec, reason in self.SCRIPT:
            engine._count_rejection(spec, reason)
        self._assert_parity(engine.snapshot()["counters"])
