"""Tests for the serving metrics layer."""

import json
import threading

import numpy as np
import pytest

from repro.serve import Counter, Distribution, Histogram, Metrics


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments(self):
        counter = Counter()

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestDistribution:
    def test_counts_per_value(self):
        dist = Distribution()
        for size in (1, 4, 4, 8, 8, 8):
            dist.observe(size)
        assert dist.snapshot() == {"1": 1, "4": 2, "8": 3}
        assert dist.total == 6


class TestHistogram:
    def test_exact_quantiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p99"] == pytest.approx(np.percentile(np.arange(1, 101), 99))
        assert snap["min"] == 1.0 and snap["max"] == 100.0

    def test_empty_snapshot(self):
        assert Histogram().snapshot()["count"] == 0

    def test_reservoir_keeps_exact_count_and_bounded_memory(self):
        histogram = Histogram(max_samples=100, seed=0)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) == 100
        # The subsample still spans the distribution.
        assert histogram.percentile(50) == pytest.approx(500, abs=150)


class TestMetricsRegistry:
    def test_instruments_are_singletons_by_name(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("h") is metrics.histogram("h")
        assert metrics.distribution("d") is metrics.distribution("d")

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.counter("requests_total").inc(3)
        metrics.histogram("latency_ms").observe(1.25)
        metrics.distribution("batch_size").observe(4)
        text = metrics.to_json(extra={"registry": {"hit_rate": 0.5}})
        snap = json.loads(text)
        assert snap["counters"]["requests_total"] == 3
        assert snap["histograms"]["latency_ms"]["count"] == 1
        assert snap["distributions"]["batch_size"] == {"4": 1}
        assert snap["registry"]["hit_rate"] == 0.5
