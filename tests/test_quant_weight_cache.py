"""Tests for the weight-tap fake-quantization cache.

The cache (``QuantEnv.cached_fake_weight``) replays a weight tap's
fake-quantized array across batches instead of recomputing it.  The
contract is *bit-exactness*: the cached path must be indistinguishable
from the uncached path for every method, bit-width, and life-cycle event
(recalibration, serialization round-trip, shadow-build + swap, weight
updates, QAT).  These tests pin that contract and the invalidation rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, no_grad
from repro.models.vit import build_vit
from repro.quant import PTQPipeline, UniformQuantizer
from repro.serve import ModelKey, ModelRegistry
from tests.conftest import TINY_VIT
from tests.test_serve_registry import tiny_loader

METHODS_UNDER_TEST = ("baseq", "quq", "biscaled", "fqvit", "ptq4vit")


def _make_calib(count=12, seed=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, 16, 16, 3)).astype(np.float32) * 0.5


def _make_batch(seed, batch=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, 16, 16, 3)).astype(np.float32) * 0.5


def _forward(model, images):
    model.eval()
    with no_grad():
        return model(Tensor(images)).data


#: Calibrated pipelines are expensive; one per (method, bits) for the
#: whole module (hypothesis re-draws examples against the same pipeline).
_PIPELINES: dict[tuple[str, int], PTQPipeline] = {}


def _pipeline(method: str, bits: int) -> PTQPipeline:
    key = (method, bits)
    if key not in _PIPELINES:
        model = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(model, method=method, bits=bits, coverage="full")
        pipeline.calibrate(_make_calib(), batch_size=8)
        _PIPELINES[key] = pipeline
    return _PIPELINES[key]


def _logits_cached_and_uncached(pipeline, images):
    """Forward the same batch with the weight cache on and off."""
    env = pipeline.env
    env.weight_cache_enabled = True
    cached = _forward(pipeline.model, images)
    env.weight_cache_enabled = False
    try:
        uncached = _forward(pipeline.model, images)
    finally:
        env.weight_cache_enabled = True
    return cached, uncached


class TestBitExactness:
    @given(
        method=st.sampled_from(METHODS_UNDER_TEST),
        bits=st.sampled_from([4, 6, 8]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_cached_matches_uncached(self, method, bits, seed):
        pipeline = _pipeline(method, bits)
        cached, uncached = _logits_cached_and_uncached(
            pipeline, _make_batch(seed)
        )
        assert np.array_equal(cached, uncached)

    def test_cache_actually_hit(self):
        pipeline = _pipeline("quq", 6)
        before = pipeline.weight_cache_info()["hits"]
        _forward(pipeline.model, _make_batch(0))
        after = pipeline.weight_cache_info()["hits"]
        assert after > before  # every weight tap replayed from cache

    def test_load_quantizers_roundtrip_bit_exact(self, tmp_path):
        calib = _make_calib()
        batch = _make_batch(7)

        original = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(original, method="quq", bits=6, coverage="full")
        pipeline.calibrate(calib, batch_size=8)
        reference = _forward(original, batch)
        path = pipeline.save_quantizers(tmp_path / "state.npz")

        restored_model = build_vit(TINY_VIT, seed=0)
        restored = PTQPipeline(restored_model, method="quq", bits=6, coverage="full")
        restored.load_quantizers(path)
        # load_quantizers pre-warms the cache; the very first batch must
        # already match the original pipeline bit-for-bit.
        assert restored.weight_cache_info()["entries"] > 0
        assert np.array_equal(_forward(restored_model, batch), reference)
        cached, uncached = _logits_cached_and_uncached(restored, batch)
        assert np.array_equal(cached, uncached)

    def test_recalibration_manager_swap_stays_bit_exact(self, tmp_path):
        """After a shadow-build + swap, the installed entry's cache serves
        the new quantizers, never a stale replay of the old ones."""
        calib = _make_calib(count=16)
        registry = ModelRegistry(
            capacity=2,
            artifact_dir=tmp_path,
            loader=tiny_loader,
            calib_provider=lambda: calib,
        )
        key = ModelKey.parse("vit_s/quq/4")
        registry.get(key)
        shifted = calib * 1.5 + 0.1  # different distribution: new params
        candidate = registry.shadow_build(key, shifted)
        registry.swap(key, candidate)

        servable = registry.get(key)
        assert servable is candidate
        batch = _make_batch(11)
        cached, uncached = _logits_cached_and_uncached(
            servable.pipeline, batch
        )
        assert np.array_equal(cached, uncached)
        assert np.array_equal(servable.predict(batch), cached)


class TestInvalidation:
    def test_param_version_advances_on_every_fit(self):
        rng = np.random.default_rng(0)
        quantizer = UniformQuantizer(6)
        assert quantizer.param_version == 0
        quantizer.fit(rng.normal(size=100))
        first = quantizer.param_version
        assert first > 0
        quantizer.fit(rng.normal(size=100) * 3)
        assert quantizer.param_version > first

    def test_refit_invalidates_cache_entry(self):
        rng = np.random.default_rng(1)
        model = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(model, method="baseq", bits=6, coverage="full")
        pipeline.calibrate(_make_calib(), batch_size=8)
        batch = _make_batch(5)
        before = _forward(model, batch)

        # Refit one weight quantizer in place on different data: the next
        # forward must recompute that tap (a miss), not replay the old one.
        name = next(
            n for n in pipeline.tap_names() if n.endswith(".weight")
        )
        misses_before = pipeline.weight_cache_info()["misses"]
        pipeline.env.quantizers[name].fit(rng.normal(size=500) * 10)
        after = _forward(model, batch)
        assert pipeline.weight_cache_info()["misses"] > misses_before
        assert not np.array_equal(before, after)  # new params took effect
        cached, uncached = _logits_cached_and_uncached(pipeline, batch)
        assert np.array_equal(cached, uncached)

    def test_recalibrate_resets_cache(self):
        model = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(model, method="baseq", bits=6, coverage="full")
        pipeline.calibrate(_make_calib(), batch_size=8)
        version = pipeline.weight_cache_info()["version"]
        pipeline.calibrate(_make_calib(seed=9), batch_size=8)
        info = pipeline.weight_cache_info()
        assert info["version"] > version
        assert info["entries"] > 0  # calibrate() pre-warms
        batch = _make_batch(2)
        cached, uncached = _logits_cached_and_uncached(pipeline, batch)
        assert np.array_equal(cached, uncached)

    def test_weight_rebind_invalidates_entry(self):
        """Optimizer steps rebind ``param.data``; the identity check must
        catch that and recompute instead of replaying stale weights."""
        model = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(model, method="baseq", bits=6, coverage="full")
        pipeline.calibrate(_make_calib(), batch_size=8)
        batch = _make_batch(4)
        before = _forward(model, batch)

        name = next(n for n in pipeline.tap_names() if n.endswith(".weight"))
        param_name = name.split(".", 1)[1]
        param = dict(model.named_parameters())[param_name]
        param.data = param.data * 1.5  # rebind, like optim.py does

        after = _forward(model, batch)
        assert not np.array_equal(before, after)
        cached, uncached = _logits_cached_and_uncached(pipeline, batch)
        assert np.array_equal(cached, uncached)

    def test_gradients_bypass_cache(self):
        """QAT runs with gradients enabled and mutating weights; the cache
        must not serve (or record) anything there."""
        model = build_vit(TINY_VIT, seed=0)
        pipeline = PTQPipeline(model, method="baseq", bits=6, coverage="full")
        pipeline.calibrate(_make_calib(), batch_size=8)
        info_before = pipeline.weight_cache_info()
        model.train()
        model(Tensor(_make_batch(8)))  # gradients enabled: no no_grad()
        model.eval()
        info_after = pipeline.weight_cache_info()
        assert info_after["hits"] == info_before["hits"]
        assert info_after["misses"] == info_before["misses"]

    def test_disabling_cache_is_equivalent_and_cold(self):
        pipeline = _pipeline("baseq", 8)
        env = pipeline.env
        hits_before = env.weight_cache_hits
        env.weight_cache_enabled = False
        try:
            _forward(pipeline.model, _make_batch(6))
        finally:
            env.weight_cache_enabled = True
        assert env.weight_cache_hits == hits_before
