"""Parity tests: fused QUQ encode kernels vs the reference QUA path.

The contract is exact equality — the fused four-slot kernel is the same
arithmetic as ``quantize_with_params`` + ``encode``, reorganized, so any
finite input must produce identical QUB words, identical shifted PE
operands, and bit-identical store/load floats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import FusedEncoder, decode_lut
from repro.hw.accelerator import encode_tensor
from repro.quant.qub import decode, legalize_for_hardware
from repro.quant.quq import QUQQuantizer

BITS = (4, 6, 8)


def fitted_params(data, bits):
    return QUQQuantizer(bits).fit(data).params


def reference_fits(rng):
    """A spread of parameter shapes: two-sided, positive-only, mixed."""
    return {
        "two_sided": rng.normal(size=2048) * 1.7,
        "positive_softmax": rng.uniform(0.0, 1.0, size=2048) ** 4,
        "gelu_like": np.where(
            rng.normal(size=2048) > 0,
            rng.normal(size=2048) * 2,
            rng.normal(size=2048) * 0.05,
        ),
        "heavy_tail": rng.standard_t(df=2, size=2048),
    }


@pytest.fixture(scope="module")
def fits():
    rng = np.random.default_rng(0)
    return reference_fits(rng)


class TestFusedEncoderParity:
    @pytest.mark.parametrize("bits", BITS)
    @pytest.mark.parametrize(
        "case", ["two_sided", "positive_softmax", "gelu_like", "heavy_tail"]
    )
    def test_encode_matches_reference(self, fits, case, bits):
        params = fitted_params(fits[case], bits)
        encoder = FusedEncoder(params, bits)
        rng = np.random.default_rng(7)
        # In-range, far out-of-range, and exact-zero inputs.
        x = np.concatenate([
            rng.normal(size=512) * np.abs(fits[case]).max(),
            rng.normal(size=64) * 100.0,
            np.zeros(8),
            np.array([np.finfo(np.float32).tiny, -np.finfo(np.float32).tiny]),
        ])
        reference = encode_tensor(x, bits, params=params)
        np.testing.assert_array_equal(encoder.encode(x), reference.qubs)

    @pytest.mark.parametrize("bits", BITS)
    def test_store_load_bit_identical(self, fits, bits):
        params = fitted_params(fits["two_sided"], bits)
        encoder = FusedEncoder(params, bits)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 33)) * 2.5
        reference = encode_tensor(x, bits, params=params)
        np.testing.assert_array_equal(encoder.store_load(x), reference.to_float())

    @pytest.mark.parametrize("bits", BITS)
    def test_shifted_matches_reference_decode(self, fits, bits):
        params = fitted_params(fits["gelu_like"], bits)
        encoder = FusedEncoder(params, bits)
        rng = np.random.default_rng(5)
        x = rng.normal(size=257)
        reference = encode_tensor(x, bits, params=params)
        d, n_sh = reference.decoded()
        np.testing.assert_array_equal(encoder.shifted(x), d << n_sh)

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False, width=64,
            ),
            min_size=1, max_size=64,
        ),
        bits=st.sampled_from(BITS),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_any_finite_input(self, fits, values, bits):
        params = fitted_params(fits["two_sided"], bits)
        encoder = FusedEncoder(params, bits)
        x = np.asarray(values)
        reference = encode_tensor(x, bits, params=params)
        np.testing.assert_array_equal(encoder.encode(x), reference.qubs)
        np.testing.assert_array_equal(encoder.store_load(x), reference.to_float())

    def test_preserves_shape(self, fits):
        params = fitted_params(fits["two_sided"], 6)
        encoder = FusedEncoder(params, 6)
        x = np.zeros((2, 3, 5))
        assert encoder.encode(x).shape == (2, 3, 5)
        assert encoder.shifted(x).shape == (2, 3, 5)

    def test_rejects_params_wider_than_qubs(self, fits):
        params = fitted_params(fits["two_sided"], 8)
        with pytest.raises(ValueError, match="fit"):
            FusedEncoder(params, 4)


class TestDecodeLut:
    @pytest.mark.parametrize("bits", BITS)
    @pytest.mark.parametrize("case", ["two_sided", "positive_softmax"])
    def test_lut_reproduces_decode_for_every_word(self, fits, case, bits):
        params = legalize_for_hardware(fitted_params(fits[case], bits))
        encoder = FusedEncoder(params, bits)
        words = np.arange(2**bits, dtype=np.uint32)
        d, n_sh = decode(words, encoder.registers, bits)
        np.testing.assert_array_equal(encoder.lut, d << n_sh)
        np.testing.assert_array_equal(
            decode_lut(encoder.registers, bits), d << n_sh
        )

    def test_lut_is_cached(self, fits):
        encoder = FusedEncoder(fitted_params(fits["two_sided"], 6), 6)
        assert encoder.lut is encoder.lut

    def test_lut_deduped_across_consumers(self, fits):
        """FusedEncoder and PackedWeightStore share one table per
        (registers, bits), built once and counted in kernel stats."""
        from repro.backend.packed import PackedWeightStore
        from repro.kernels import KERNELS, clear_kernel_caches

        params = legalize_for_hardware(fitted_params(fits["two_sided"], 6))
        clear_kernel_caches()
        KERNELS.reset_counters()
        encoder = FusedEncoder(params, 6)
        lut = encoder.lut
        rng = np.random.default_rng(11)
        encoded = encode_tensor(rng.normal(size=(8, 8)), 6, params=params)
        packed = PackedWeightStore._pack_encoded("w", encoded)
        assert packed.lut is lut
        assert not lut.flags.writeable
        counters = KERNELS.counters
        assert counters["qub.decode_lut:cache_miss"] == 1
        assert counters["qub.decode_lut:cache_hit"] >= 1
