"""Tests for the Swin transformer substrate."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models.swin import (
    PatchMerging,
    SwinBlock,
    WindowAttention,
    _relative_position_index,
    _shift_attention_mask,
    _window_partition,
    _window_reverse,
    build_swin,
)
from tests.conftest import TINY_SWIN


class TestWindowPartition:
    def test_partition_reverse_inverse(self, rng):
        x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
        windows = _window_partition(Tensor(x), 4)
        assert windows.shape == (2 * 4, 16, 4)
        back = _window_reverse(windows, 4, 8, 8)
        np.testing.assert_allclose(back.data, x)

    def test_partition_groups_spatially(self):
        # Mark each 2x2 quadrant of a 4x4 grid; window 2 must isolate them.
        x = np.zeros((1, 4, 4, 1), dtype=np.float32)
        x[0, :2, :2] = 1
        x[0, :2, 2:] = 2
        x[0, 2:, :2] = 3
        x[0, 2:, 2:] = 4
        windows = _window_partition(Tensor(x), 2).data
        for w in range(4):
            assert len(np.unique(windows[w])) == 1


class TestRelativePositionIndex:
    def test_shape_and_range(self):
        idx = _relative_position_index(4)
        assert idx.shape == (16, 16)
        assert idx.min() >= 0 and idx.max() < 49  # (2*4-1)^2

    def test_symmetry_structure(self):
        # The relative index of (i, j) and (j, i) mirror around the center.
        idx = _relative_position_index(3)
        center = idx[0, 0]
        assert (np.diag(idx) == center).all()


class TestShiftMask:
    def test_no_block_within_region(self):
        mask = _shift_attention_mask(8, 4, 2)
        assert mask.shape == (4, 16, 16)
        assert mask.dtype == bool
        # Diagonal is never blocked (a token attends to itself).
        for w in range(4):
            assert not mask[w].diagonal().any()

    def test_unshifted_windows_unmasked(self):
        # The window far from the wrap-around boundary has no blocked pairs.
        mask = _shift_attention_mask(8, 4, 2)
        assert not mask[0].any()
        # Windows crossing the wrapped boundary must block something.
        assert mask[-1].any()


class TestWindowAttention:
    def test_shape(self, rng):
        attn = WindowAttention(8, 4, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(6, 16, 8)).astype(np.float32)))
        assert out.shape == (6, 16, 8)

    def test_mask_blocks_attention(self, rng):
        attn = WindowAttention(8, 4, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 16, 8)).astype(np.float32))
        mask = _shift_attention_mask(8, 4, 2)
        attn(x, mask=mask)
        probs = attn.last_attention  # (4, heads, 16, 16)
        blocked = np.broadcast_to(mask[:, None, :, :], probs.shape)
        assert probs[blocked].max() < 1e-6

    def test_bias_table_grad_flows(self, rng):
        attn = WindowAttention(8, 4, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 16, 8)).astype(np.float32)))
        out.sum().backward()
        assert attn.relative_bias_table.grad is not None


class TestSwinBlock:
    def test_window_clamped_to_resolution(self, rng):
        block = SwinBlock(8, resolution=4, num_heads=2, window_size=8, shift=2, rng=rng)
        assert block.window_size == 4
        assert block.shift == 0

    def test_forward_shape_with_shift(self, rng):
        block = SwinBlock(8, resolution=8, num_heads=2, window_size=4, shift=2, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 64, 8)).astype(np.float32)))
        assert out.shape == (2, 64, 8)

    def test_rejects_wrong_token_count(self, rng):
        block = SwinBlock(8, resolution=8, num_heads=2, window_size=4, shift=0, rng=rng)
        with pytest.raises(ValueError):
            block(Tensor(rng.normal(size=(1, 60, 8)).astype(np.float32)))


class TestPatchMerging:
    def test_downsamples_2x(self, rng):
        merge = PatchMerging(8, resolution=4, rng=rng)
        out = merge(Tensor(rng.normal(size=(2, 16, 8)).astype(np.float32)))
        assert out.shape == (2, 4, 16)

    def test_rejects_odd_resolution(self):
        with pytest.raises(ValueError):
            PatchMerging(8, resolution=5)


class TestSwinTransformer:
    def test_forward_shape(self, tiny_swin, rng):
        images = rng.normal(size=(2, 16, 16, 3)).astype(np.float32)
        assert tiny_swin(Tensor(images)).shape == (2, 10)

    def test_stage_dims_double(self, tiny_swin):
        assert tiny_swin.config.stage_dim(1) == 2 * tiny_swin.config.stage_dim(0)

    def test_attention_maps_counted_per_block(self, tiny_swin, rng):
        images = rng.normal(size=(1, 16, 16, 3)).astype(np.float32)
        tiny_swin(Tensor(images))
        assert len(tiny_swin.attention_maps()) == sum(TINY_SWIN.depths)

    def test_gradients_reach_patch_embed(self, tiny_swin, rng):
        images = rng.normal(size=(1, 16, 16, 3)).astype(np.float32)
        tiny_swin(Tensor(images)).sum().backward()
        assert tiny_swin.patch_embed.proj.weight.grad is not None

    def test_seed_determinism(self, rng):
        a = build_swin(TINY_SWIN, seed=3)
        b = build_swin(TINY_SWIN, seed=3)
        images = rng.normal(size=(1, 16, 16, 3)).astype(np.float32)
        np.testing.assert_allclose(a(Tensor(images)).data, b(Tensor(images)).data)
