"""Unit tests for the resilience building blocks.

Everything here is clock- or event-driven: the breaker and watchdog run
on a fake clock, the retry policy on a fake sleep, and the fault plan on
its own event counters — no test in this module sleeps.
"""

import numpy as np
import pytest

from repro.resilience import (
    CLOSED,
    FAULT_KINDS,
    HALF_OPEN,
    LOAD_ERROR,
    NUMERIC,
    OPEN,
    STALL,
    CircuitBreaker,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    NumericGuard,
    ResiliencePolicy,
    RetryPolicy,
    WorkerWatchdog,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestFaultPlan:
    def test_window_fires_on_exact_event_indices(self):
        plan = FaultPlan([FaultSpec("batch_exception", start=2, count=2)])
        fired = [plan.fire("batch_exception", site="lane") is not None
                 for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert plan.injected("batch_exception") == 2

    def test_sites_keep_independent_counters(self):
        plan = FaultPlan([FaultSpec("stall", start=1, count=1)])
        assert plan.fire("stall", site="a") is None
        assert plan.fire("stall", site="b") is None  # b's own event 0
        assert plan.fire("stall", site="a") is not None
        assert plan.fire("stall", site="b") is not None

    def test_site_bound_spec_only_matches_that_site(self):
        plan = FaultPlan([FaultSpec("numeric", start=0, count=5, site="lane-a")])
        assert plan.fire("numeric", site="lane-b") is None
        assert plan.fire("numeric", site="lane-a") is not None

    def test_raise_if_raises_with_kind_and_site(self):
        plan = FaultPlan([FaultSpec(LOAD_ERROR, start=0, count=1)])
        with pytest.raises(FaultInjected) as exc:
            plan.raise_if(LOAD_ERROR, site="spec")
        assert exc.value.kind == LOAD_ERROR
        assert exc.value.site == "spec"
        plan.raise_if(LOAD_ERROR, site="spec")  # window exhausted: no raise

    def test_seeded_is_reproducible_and_covers_requested_kinds(self):
        a = FaultPlan.seeded(seed=3, kinds=FAULT_KINDS, horizon=10)
        b = FaultPlan.seeded(seed=3, kinds=FAULT_KINDS, horizon=10)
        assert a.specs == b.specs
        assert a.planned_kinds() == set(FAULT_KINDS)
        assert FaultPlan.seeded(seed=4, kinds=FAULT_KINDS).specs != a.specs

    @pytest.mark.parametrize("mode", ["nan", "inf", "overflow"])
    def test_corrupt_logits_each_mode_trips_the_guard(self, mode):
        plan = FaultPlan([FaultSpec(NUMERIC, start=0, count=1, mode=mode)])
        logits = np.linspace(-1.0, 1.0, 40).reshape(5, 8)
        polluted = plan.corrupt_logits(logits, site="lane")
        assert np.isfinite(logits).all()  # input untouched
        assert not NumericGuard().scan(polluted).ok
        # Window exhausted: clean pass-through afterwards.
        again = plan.corrupt_logits(logits, site="lane")
        assert again is logits

    def test_stall_blocks_until_released(self):
        plan = FaultPlan([FaultSpec(STALL, start=0, count=2, stall_s=30.0)])
        plan.release_stalls()  # pre-released: must return immediately
        assert plan.serve_stall(site="lane") is True
        assert plan.serve_stall(site="lane") is True
        assert plan.serve_stall(site="lane") is False  # window exhausted

    def test_snapshot_reports_events_and_injections(self):
        plan = FaultPlan([FaultSpec("queue_spike", start=0, count=1)])
        plan.fire("queue_spike")
        plan.fire("queue_spike")
        snap = plan.snapshot()
        assert snap["events"]["queue_spike"] == 2
        assert snap["injected"] == {"queue_spike": 1}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("not_a_kind")
        with pytest.raises(ValueError):
            FaultSpec(NUMERIC, mode="garbage")
        with pytest.raises(ValueError):
            FaultSpec(STALL, count=0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two in a row

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()  # cooling down
        clock.advance(5.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe until it reports
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1 and breaker.probes == 1

    def test_failed_probe_reopens_and_rearms_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN and breaker.trips == 2
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()  # cooldown measured from the re-trip
        clock.advance(0.1)
        assert breaker.allow()

    def test_snapshot_shape(self):
        snap = CircuitBreaker(clock=FakeClock()).snapshot()
        assert snap == {"state": CLOSED, "consecutive_failures": 0,
                        "trips": 0, "probes": 0, "recoveries": 0}


class TestRetryPolicy:
    def test_recovers_within_budget_and_reports_schedule(self):
        sleeps = []
        policy = RetryPolicy(attempts=4, backoff_s=0.1, multiplier=2.0,
                             max_backoff_s=10.0, sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        seen = []
        assert policy.call(flaky, on_retry=lambda e, a, d: seen.append((a, d))) == "ok"
        assert calls["n"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]
        assert seen == [(0, pytest.approx(0.1)), (1, pytest.approx(0.2))]

    def test_exhausted_budget_reraises_last_error(self):
        policy = RetryPolicy(attempts=2, backoff_s=0.0, sleep=lambda s: None)

        def always_fails():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            policy.call(always_fails)

    def test_non_retryable_errors_pass_straight_through(self):
        sleeps = []
        policy = RetryPolicy(attempts=5, retry_on=(OSError,), sleep=sleeps.append)

        def fails_differently():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fails_differently)
        assert sleeps == []  # no backoff for a non-retryable class

    def test_backoff_is_capped(self):
        policy = RetryPolicy(backoff_s=1.0, multiplier=10.0, max_backoff_s=3.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 3.0
        assert policy.delay(5) == 3.0


class TestNumericGuard:
    def test_clean_logits_pass(self):
        verdict = NumericGuard().scan(np.linspace(-5, 5, 30))
        assert verdict.ok and verdict.reason == "ok"

    def test_counts_each_failure_class(self):
        guard = NumericGuard(saturation_limit=100.0)
        logits = np.zeros(8)
        logits[0] = np.nan
        logits[1] = np.inf
        logits[2] = -np.inf
        logits[3] = 101.0
        verdict = guard.scan(logits)
        assert (verdict.nan, verdict.inf, verdict.saturated) == (1, 2, 1)
        assert "NaN" in verdict.reason and "saturated" in verdict.reason

    def test_saturation_boundary_is_exclusive(self):
        guard = NumericGuard(saturation_limit=100.0)
        assert guard.scan(np.array([100.0, -100.0])).ok
        assert not guard.scan(np.array([100.0001])).ok


class TestWorkerWatchdog:
    def test_stall_detection_on_fake_clock(self):
        clock = FakeClock()
        dog = WorkerWatchdog(stall_after_s=2.0, clock=clock)
        assert not dog.stalled("lane")  # never seen: not stalled
        dog.beat("lane")
        clock.advance(1.9)
        assert not dog.stalled("lane")
        clock.advance(0.1)
        assert dog.stalled("lane")
        dog.reset("lane")
        assert not dog.stalled("lane")

    def test_snapshot_reports_ages(self):
        clock = FakeClock()
        dog = WorkerWatchdog(stall_after_s=5.0, clock=clock)
        dog.beat("a", now=0.0)
        clock.advance(3.0)
        snap = dog.snapshot()
        assert snap["ages_s"]["a"] == pytest.approx(3.0)


class TestResiliencePolicy:
    def test_defaults_validate(self):
        policy = ResiliencePolicy()
        assert policy.breaker_failures >= 1

    @pytest.mark.parametrize("kwargs", [
        {"breaker_failures": 0},
        {"breaker_cooldown_s": -1.0},
        {"guard_saturation": 0.0},
        {"watchdog_stall_s": 0.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)
