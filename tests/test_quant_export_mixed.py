"""Tests for quantized-model export and mixed-precision allocation."""

import numpy as np
import pytest

from repro.analysis import kind_sensitivity, tap_sensitivity
from repro.quant import (
    PTQPipeline,
    allocate_mixed_precision,
    deployment_report,
    export_quantized,
    load_quantized,
)
from repro.training import evaluate_top1


@pytest.fixture
def quq_pipeline(tiny_trained, calib_images):
    pipeline = PTQPipeline(tiny_trained, method="quq", bits=6, coverage="full")
    pipeline.calibrate(calib_images)
    yield pipeline
    pipeline.detach()


class TestExport:
    def test_roundtrip_weights(self, quq_pipeline, tmp_path):
        artifact = export_quantized(quq_pipeline, tmp_path / "model.npz")
        loaded = load_quantized(tmp_path / "model.npz")
        assert set(loaded.weights) == set(artifact.weights)
        assert set(loaded.activations) == set(artifact.activations)
        for tap in artifact.weights:
            np.testing.assert_allclose(
                loaded.weight_values(tap), artifact.weight_values(tap)
            )

    def test_decoded_weights_close_to_float(self, quq_pipeline, tiny_trained, tmp_path):
        artifact = export_quantized(quq_pipeline, tmp_path / "model.npz")
        parameters = dict(tiny_trained.named_parameters())
        tap = next(iter(artifact.weights))
        param_name = tap.split(".", 1)[1]
        original = parameters[param_name].data
        decoded = artifact.weight_values(tap).reshape(original.shape)
        # Error bounded by the coarsest quantization step of that tensor.
        coarsest = max(s.delta for _, s in artifact.weights[tap][3].active())
        assert np.abs(decoded - original).max() <= coarsest / 2 + 1e-6

    def test_shapes_preserved(self, quq_pipeline, tiny_trained, tmp_path):
        export_quantized(quq_pipeline, tmp_path / "model.npz")
        loaded = load_quantized(tmp_path / "model.npz")
        parameters = dict(tiny_trained.named_parameters())
        for tap, (qubs, _, _, _) in loaded.weights.items():
            assert qubs.shape == parameters[tap.split(".", 1)[1]].data.shape

    def test_payload_smaller_than_fp32(self, quq_pipeline, tiny_trained, tmp_path):
        artifact = export_quantized(quq_pipeline, tmp_path / "model.npz")
        fp32 = sum(
            p.data.nbytes for p in dict(tiny_trained.named_parameters()).values()
        )
        assert artifact.payload_bytes() < fp32

    def test_requires_quq(self, tiny_trained, calib_images, tmp_path):
        pipeline = PTQPipeline(tiny_trained, method="baseq", bits=6).calibrate(calib_images)
        with pytest.raises(ValueError):
            export_quantized(pipeline, tmp_path / "model.npz")
        pipeline.detach()

    def test_deployment_report(self, quq_pipeline):
        report = deployment_report(quq_pipeline)
        # 6-bit weights + constant side info: > 4.5x smaller than fp32.
        assert report["compression"] > 4.5
        assert report["quantized_megabytes"] < report["fp32_megabytes"]


class TestSensitivity:
    def test_kind_sensitivity_nonnegative(self, quq_pipeline, calib_images):
        result = kind_sensitivity(quq_pipeline, calib_images[:8])
        assert all(v >= 0 for v in result.values())
        assert "weight" in result and "residual" in result

    def test_quantizers_restored_after_analysis(self, quq_pipeline, calib_images):
        before = set(quq_pipeline.env.quantizers)
        kind_sensitivity(quq_pipeline, calib_images[:8])
        assert set(quq_pipeline.env.quantizers) == before

    def test_tap_sensitivity_subset(self, quq_pipeline, calib_images):
        taps = quq_pipeline.tap_names()[:3]
        result = tap_sensitivity(quq_pipeline, calib_images[:8], taps=taps)
        assert set(result) == set(taps)


class TestMixedPrecision:
    def test_budget_respected(self, quq_pipeline, calib_images):
        sensitivities = {name: 1.0 for name in quq_pipeline.tap_names()}
        allocation = allocate_mixed_precision(
            quq_pipeline, sensitivities, budget_bits=6.0, calib_images=calib_images
        )
        mean_bits = np.mean(list(allocation.values()))
        assert mean_bits <= 6.0 + 1e-9
        assert set(allocation.values()) <= {4, 6, 8}

    def test_sensitive_taps_get_more_bits(self, quq_pipeline, calib_images):
        taps = quq_pipeline.tap_names()
        sensitivities = {name: 0.0 for name in taps}
        hot = taps[0]
        sensitivities[hot] = 100.0
        allocation = allocate_mixed_precision(
            quq_pipeline, sensitivities, budget_bits=4.5, calib_images=calib_images
        )
        assert allocation[hot] >= max(
            v for k, v in allocation.items() if k != hot
        ) or allocation[hot] == 8

    def test_refit_keeps_model_functional(
        self, quq_pipeline, calib_images, tiny_data
    ):
        _, val_set = tiny_data
        sensitivities = tap_sensitivity(
            quq_pipeline, calib_images[:8], taps=quq_pipeline.tap_names()[:5]
        )
        allocate_mixed_precision(
            quq_pipeline, sensitivities, budget_bits=6.0, calib_images=calib_images
        )
        acc = evaluate_top1(quq_pipeline.model, val_set.subset(64, seed=0))
        assert acc > 15.0

    def test_invalid_budget_rejected(self, quq_pipeline, calib_images):
        with pytest.raises(ValueError):
            allocate_mixed_precision(quq_pipeline, {}, 3.0, calib_images)
        with pytest.raises(ValueError):
            allocate_mixed_precision(quq_pipeline, {}, 9.0, calib_images)
