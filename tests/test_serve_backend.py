"""Serve-layer tests for the pluggable backend: spec parsing, registry
construction, engine counters, and drift-swap weight rebuilds."""

import numpy as np
import pytest

from repro.backend import IntNativeBackend
from repro.serve import (
    BatchPolicy,
    ModelKey,
    ModelRegistry,
    RecalibrationManager,
    ServeEngine,
)
from repro.serve.metrics import Metrics
from tests.test_serve_drift import FakeClock, drifted_batches, make_policy
from tests.test_serve_registry import tiny_loader

INT_SPEC = "vit_s/quq/4/full/int"


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=4,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


class TestModelKeyBackend:
    def test_default_backend_is_float(self):
        key = ModelKey.parse("vit_s/quq/6")
        assert key.backend == "float"
        assert key.spec == "vit_mini_s/quq/6/full"  # unchanged by the field

    def test_parse_five_part_spec(self):
        key = ModelKey.parse(INT_SPEC)
        assert key.backend == "int"
        assert key.spec == "vit_mini_s/quq/4/full/int"
        assert key.slug == "vit_mini_s-quq-4-full-int"

    def test_spec_round_trip(self):
        key = ModelKey.parse(INT_SPEC)
        assert ModelKey.parse(key.spec) == key

    @pytest.mark.parametrize("spec", [
        "vit_s/quq/6/full/gpu",  # unknown backend
        "vit_s/baseq/6/full/int",  # int requires quq
        "vit_s/fp32/32/full/int",  # int requires quq
        "vit_s/quq/6/partial/int",  # int requires full coverage
        "vit_s/quq/6/full/int/extra",  # too many parts
    ])
    def test_rejects_bad_backend_specs(self, spec):
        with pytest.raises(ValueError):
            ModelKey.parse(spec)

    def test_float_and_int_keys_are_distinct_cache_entries(self):
        assert ModelKey.parse("vit_s/quq/4") != ModelKey.parse(INT_SPEC)


class TestRegistryBackendConstruction:
    def test_float_entry_carries_float_backend(self, registry):
        servable = registry.get("vit_s/quq/4")
        assert servable.backend is not None
        assert servable.backend.name == "float"

    def test_int_entry_carries_int_backend(self, registry):
        servable = registry.get(INT_SPEC)
        assert isinstance(servable.backend, IntNativeBackend)
        assert servable.quantized

    def test_int_predict_matches_direct_backend(self, registry, calib_images):
        servable = registry.get(INT_SPEC)
        images = calib_images[:2]
        np.testing.assert_array_equal(
            servable.predict(images), servable.backend.predict(images)
        )

    def test_fp32_entry_gets_float_backend(self, registry):
        servable = registry.get("vit_s/fp32/32")
        assert servable.backend.name == "float"
        assert servable.backend.memory_info()["packed_weight_bytes"] == 0

    def test_int_build_failure_degrades_to_float(self, tmp_path, calib_images):
        from repro.models.configs import SwinConfig
        from repro.models.swin import build_swin

        def swin_loader(name):
            # A topology the int backend refuses (no cls_token): the
            # registry must degrade to the float fallback, not raise.
            config = SwinConfig("tiny_swin", 16, 2, 3, 10, 16, (1, 1), (2, 2), 4)
            return build_swin(config, seed=0), 40.0

        registry = ModelRegistry(
            capacity=2,
            artifact_dir=tmp_path,
            loader=swin_loader,
            calib_provider=lambda: calib_images[:16],
        )
        servable = registry.get("swin_t/quq/4/full/int")
        assert not servable.quantized
        assert servable.fallback_reason is not None
        assert servable.backend.name == "float"
        assert registry.snapshot()["fallbacks"] == 1

    def test_snapshot_reports_backend_per_entry(self, registry):
        registry.get("vit_s/quq/4")
        registry.get(INT_SPEC)
        backends = registry.snapshot()["backends"]
        assert backends["vit_mini_s/quq/4/full"]["backend"] == "float"
        int_entry = backends["vit_mini_s/quq/4/full/int"]
        assert int_entry["backend"] == "int"
        assert 0 < int_entry["packed_weight_bytes"] < int_entry["float_weight_bytes"]
        assert int_entry["reduction"] >= 2.0
        assert "int_gemm_calls" in int_entry


class TestEngineIntBackend:
    def test_end_to_end_serving_and_counters(self, registry, tiny_data):
        _, val_set = tiny_data
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0, max_queue=64)
        with ServeEngine(registry, policy) as engine:
            engine.warm(INT_SPEC)
            handles = [
                engine.submit(INT_SPEC, image) for image in val_set.images[:6]
            ]
            results = [handle.result(timeout=60.0) for handle in handles]
        assert all(result.quantized for result in results)
        counters = engine.snapshot()["counters"]
        assert counters["int_batches_total"] >= 1

    def test_int_batches_label_parity(self, registry, tiny_data):
        # Same invariant as TestEngineCounterLabelParity: the global
        # int_batches_total must equal the sum of its per-spec children,
        # and float lanes must not contribute.
        _, val_set = tiny_data
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0, max_queue=64)
        specs = (INT_SPEC, "vit_s/quq/4")
        with ServeEngine(registry, policy) as engine:
            for spec in specs:
                engine.warm(spec)
            handles = [
                engine.submit(specs[i % 2], image)
                for i, image in enumerate(val_set.images[:8])
            ]
            for handle in handles:
                handle.result(timeout=60.0)
        counters = engine.snapshot()["counters"]
        labelled = {
            name: value
            for name, value in counters.items()
            if name.startswith('int_batches_total{spec="')
        }
        assert counters["int_batches_total"] == sum(labelled.values())
        assert counters["int_batches_total"] >= 1
        # Only the int lane carries the label; the float lane served the
        # same model without ever touching the integer datapath.
        assert set(labelled) == {
            'int_batches_total{spec="vit_mini_s/quq/4/full/int"}'
        }


class TestDriftSwapRebuildsPackedWeights:
    def test_swap_rebuilds_backend_and_preserves_exactness(
        self, registry, tiny_data, calib_images
    ):
        from repro.backend import attest_int_backend

        _, val_set = tiny_data
        key = ModelKey.parse(INT_SPEC)
        clock = FakeClock()
        metrics = Metrics()
        manager = RecalibrationManager(
            registry, make_policy(), metrics=metrics, clock=clock
        )
        original = registry.get(key)
        original_backend = original.backend
        swapped = False
        for chunk in drifted_batches(val_set.images, 4):
            servable = registry.get(key)
            servable.predict(chunk, recorder=manager.recorder_for(key, servable))
            if manager.finish_batch(key, servable, chunk).swapped:
                swapped = True
                break
        assert swapped, "sustained drift must trigger a swap"
        replacement = registry.get(key)
        assert replacement is not original
        assert isinstance(replacement.backend, IntNativeBackend)
        # The packed weight store was rebuilt under the new calibration,
        # not carried over from the stale entry.
        assert replacement.backend is not original_backend
        assert replacement.backend.weights is not original_backend.weights
        # And the swapped-in backend still matches the reference executor
        # bit for bit under its fresh parameters.
        report = attest_int_backend(
            replacement.model,
            replacement.pipeline,
            calib_images[:2],
            backend=replacement.backend,
        )
        assert report["bit_exact"]
