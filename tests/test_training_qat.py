"""Tests for quantization-aware fine-tuning."""

import pytest

from repro.quant import PTQPipeline
from repro.training import evaluate_top1, quantization_aware_finetune


class TestQAT:
    def test_requires_calibration(self, tiny_trained, tiny_data):
        train_set, _ = tiny_data
        pipeline = PTQPipeline(tiny_trained, method="quq", bits=4, coverage="full")
        with pytest.raises(RuntimeError):
            quantization_aware_finetune(pipeline, train_set, epochs=1)

    def test_finetune_reduces_quantized_loss(self, tiny_data, calib_images):
        # Use a fresh model so fine-tuning does not disturb the shared
        # tiny_trained fixture.
        from repro.models.vit import build_vit
        from repro.training import TrainConfig, train_classifier
        from tests.conftest import TINY_VIT

        train_set, val_set = tiny_data
        model = build_vit(TINY_VIT, seed=1)
        train_classifier(model, train_set, TrainConfig(epochs=2, batch_size=64, lr=2e-3))

        pipeline = PTQPipeline(model, method="quq", bits=4, coverage="full")
        pipeline.calibrate(calib_images)
        before = evaluate_top1(model, val_set.subset(96, seed=2))
        history = quantization_aware_finetune(
            pipeline, train_set, epochs=2, lr=3e-4
        )
        after = evaluate_top1(model, val_set.subset(96, seed=2))
        pipeline.detach()

        assert history[-1] <= history[0] + 0.05  # loss does not blow up
        assert after >= before - 3.0  # and accuracy does not regress

    def test_model_left_in_eval_mode(self, tiny_data, calib_images):
        from repro.models.vit import build_vit
        from tests.conftest import TINY_VIT

        train_set, _ = tiny_data
        model = build_vit(TINY_VIT, seed=2)
        pipeline = PTQPipeline(model, method="quq", bits=6, coverage="full")
        pipeline.calibrate(calib_images)
        quantization_aware_finetune(pipeline, train_set.subset(64, seed=0), epochs=1)
        pipeline.detach()
        assert not model.training
