"""End-to-end tests for the serving engine and the benchmark driver."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    QueueFullError,
    ServeEngine,
    format_snapshot,
    run_serve_benchmark,
)
from tests.test_serve_registry import tiny_loader

SPEC = "vit_s/quq/4"
FLOAT_SPEC = "vit_s/fp32/32"


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class SteppingClock:
    """A clock that jumps ``step`` seconds every time it is read."""

    def __init__(self, step=0.1):
        self.now = 0.0
        self.step = step
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.now += self.step
            return self.now


class _Result:
    def __init__(self, batch):
        self.data = np.zeros((batch, 10), dtype=np.float32)


class BlockingModel:
    """A float model whose forward blocks until ``gate`` is set."""

    def __init__(self, gate):
        self.gate = gate

    def eval(self):
        pass

    def __call__(self, tensor):
        self.gate.wait(timeout=30.0)
        return _Result(tensor.data.shape[0])


class RaisingModel:
    def eval(self):
        pass

    def __call__(self, tensor):
        raise RuntimeError("model exploded mid-batch")


def blocking_registry(gate):
    return ModelRegistry(capacity=2, loader=lambda name: (BlockingModel(gate), 0.0))


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=2,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


class TestServeEngine:
    def test_results_match_direct_inference(self, registry, tiny_data):
        _, val_set = tiny_data
        images = val_set.images[:12]
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0, max_queue=64)
        with ServeEngine(registry, policy) as engine:
            engine.warm(SPEC)
            reference = registry.get(SPEC).predict(images).argmax(axis=-1)
            handles = [engine.submit(SPEC, image) for image in images]
            results = [handle.result(timeout=30.0) for handle in handles]

        assert [r.label for r in results] == list(reference)
        assert all(r.quantized for r in results)
        assert all(1 <= r.batch_size <= 4 for r in results)
        snapshot = engine.snapshot()
        assert snapshot["counters"]["responses_total"] == 12
        assert snapshot["counters"]["requests_total"] == 12
        assert snapshot["histograms"]["e2e_latency_ms"]["count"] == 12
        assert sum(
            int(size) * count
            for size, count in snapshot["distributions"]["batch_size"].items()
        ) == 12

    def test_backpressure_surfaces_queue_full(self, registry, tiny_data):
        _, val_set = tiny_data
        # With a queue bound of 1 and batch size 1, a burst of submissions
        # races the worker; the exact rejection count depends on timing, so
        # only the accounting invariant is asserted (the deterministic
        # rejection behaviour itself is covered in test_serve_scheduler).
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=1)
        with ServeEngine(registry, policy) as engine:
            engine.warm(SPEC)
            rejected = 0
            handles = []
            for image in val_set.images[:32]:
                try:
                    handles.append(engine.submit(SPEC, image))
                except QueueFullError:
                    rejected += 1
            for handle in handles:
                handle.result(timeout=30.0)
        assert rejected + len(handles) == 32
        assert engine.snapshot()["counters"].get("rejected_total", 0) == rejected

    def test_degraded_model_still_serves(self, tmp_path, tiny_data):
        def broken_calib():
            raise RuntimeError("no calibration data")

        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=broken_calib,
        )
        _, val_set = tiny_data
        with ServeEngine(registry) as engine:
            handle = engine.submit(SPEC, val_set.images[0])
            result = handle.result(timeout=30.0)
        assert not result.quantized  # float fallback answered
        assert registry.snapshot()["fallbacks"] == 1

    def test_stop_rejects_new_work(self, registry):
        engine = ServeEngine(registry)
        engine.stop()
        with pytest.raises(RuntimeError):
            engine.submit(SPEC, np.zeros((16, 16, 3), dtype=np.float32))


class TestShutdownUnderLoad:
    """stop() must join workers and fail pending requests — never hang."""

    def test_stop_with_batch_in_flight_fails_pending_requests(self):
        gate = threading.Event()
        engine = ServeEngine(blocking_registry(gate), clock=FakeClock())
        image = np.zeros((16, 16, 3), dtype=np.float32)
        handle = engine.submit(FLOAT_SPEC, image)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:  # wait until the batch is taken
            lanes = engine.snapshot()["lanes"]
            if lanes and next(iter(lanes.values()))["queued"] == 0:
                break
            time.sleep(0.005)
        engine.stop()  # the wedged worker cannot join: its batch must fail
        assert handle.done()
        with pytest.raises(RuntimeError, match="engine stopped"):
            handle.result(timeout=0.0)
        gate.set()  # let the abandoned daemon finish (first-wins no-op)

    def test_stop_with_queued_requests_fails_them(self):
        gate = threading.Event()
        engine = ServeEngine(
            blocking_registry(gate),
            BatchPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=8),
            clock=FakeClock(),
        )
        image = np.zeros((16, 16, 3), dtype=np.float32)
        handles = [engine.submit(FLOAT_SPEC, image) for _ in range(4)]
        engine.stop()
        gate.set()
        for handle in handles:
            assert handle.done()
            with pytest.raises((QueueFullError, RuntimeError)):
                handle.result(timeout=5.0)

    def test_stop_joins_workers_when_predict_raises(self):
        registry = ModelRegistry(capacity=2, loader=lambda n: (RaisingModel(), 0.0))
        engine = ServeEngine(registry, clock=FakeClock())
        image = np.zeros((16, 16, 3), dtype=np.float32)
        handles = [engine.submit(FLOAT_SPEC, image) for _ in range(6)]
        for handle in handles:
            with pytest.raises(RuntimeError, match="exploded"):
                handle.result(timeout=30.0)
        engine.stop()
        # One errors_total increment per failed batch (requests coalesce).
        assert engine.snapshot()["counters"]["errors_total"] >= 1
        for lane_threads in (lane.threads for lane in engine._lanes.values()):
            for thread in lane_threads:
                assert not thread.is_alive()


class TestDrainClock:
    def test_drain_deadline_runs_on_injected_clock(self):
        # A stepping clock races through the 5s drain budget in ~50 reads
        # even though almost no real time passes — proving the deadline is
        # measured on the injected clock, not time.monotonic().
        gate = threading.Event()
        engine = ServeEngine(blocking_registry(gate), clock=SteppingClock(step=0.1))
        image = np.zeros((16, 16, 3), dtype=np.float32)
        engine.submit(FLOAT_SPEC, image)
        started = time.monotonic()
        assert engine.drain(timeout=5.0, wall_cap=20.0) is False
        assert time.monotonic() - started < 5.0  # fake 5s ≪ real 5s
        gate.set()
        engine.stop()

    def test_drain_wall_cap_bounds_a_frozen_clock(self):
        # A frozen clock never reaches the deadline; the real-time cap
        # must stop the loop anyway.
        gate = threading.Event()
        engine = ServeEngine(blocking_registry(gate), clock=FakeClock())
        image = np.zeros((16, 16, 3), dtype=np.float32)
        engine.submit(FLOAT_SPEC, image)
        started = time.monotonic()
        assert engine.drain(timeout=60.0, wall_cap=0.3) is False
        assert time.monotonic() - started < 5.0
        gate.set()
        engine.stop()

    def test_drain_returns_true_once_quiet(self, registry, tiny_data):
        _, val_set = tiny_data
        with ServeEngine(registry) as engine:
            handle = engine.submit(SPEC, val_set.images[0])
            handle.result(timeout=30.0)
            assert engine.drain(timeout=10.0) is True


class TestSubmitMetricsAccounting:
    def test_rejected_submissions_do_not_count_as_requests(self):
        gate = threading.Event()
        engine = ServeEngine(
            blocking_registry(gate),
            BatchPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=1),
            clock=FakeClock(),
        )
        image = np.zeros((16, 16, 3), dtype=np.float32)
        accepted, rejected = 0, 0
        for _ in range(8):
            try:
                engine.submit(FLOAT_SPEC, image)
                accepted += 1
            except QueueFullError:
                rejected += 1
        counters = engine.snapshot()["counters"]
        assert rejected > 0  # queue of 1 with a wedged worker must reject
        assert counters["requests_total"] == accepted
        assert counters["rejected_total"] == rejected
        lane_key = next(iter(engine.snapshot()["lanes"]))
        assert counters[f'rejected_total{{spec="{lane_key}"}}'] == rejected
        assert engine.snapshot()["distributions"]["queue_depth"]
        gate.set()
        engine.stop()


@pytest.mark.slow
class TestServeBenchmark:
    def test_open_loop_run_produces_full_snapshot(self, registry):
        policy = BatchPolicy(
            max_batch_size=8, max_wait_ms=5.0, max_queue=256, timeout_ms=30000.0
        )
        with ServeEngine(registry, policy) as engine:
            snapshot = run_serve_benchmark(
                engine, SPEC, requests=200, rate=500.0, image_size=16
            )
        summary = snapshot["summary"]
        assert summary["completed"] == 200
        assert summary["throughput_rps"] > 0
        latency = snapshot["histograms"]["e2e_latency_ms"]
        assert latency["count"] == 200
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert snapshot["distributions"]["batch_size"]
        # Warmed once, then every batch is a registry hit.
        assert snapshot["registry"]["hit_rate"] > 0.5
        rendered = format_snapshot(snapshot)
        assert "Serving benchmark" in rendered
        assert "Batch-size distribution" in rendered
        assert "Registry" in rendered


class TestSnapshotConsistencyUnderLoad:
    """``snapshot()`` collects lane state under the engine lock with each
    lane's lock and the scheduler's atomic ``stats()`` held, so every view
    describes one instant — and taking it must never deadlock against the
    workers, submitters, or completions racing it."""

    LANE_KEYS = {"queued", "timed_out", "rejected", "breaker",
                 "watchdog_restarts", "in_flight", "degraded"}

    def test_snapshot_under_concurrent_mutation(self, registry, tiny_data):
        from repro.serve import ModelKey

        _, val_set = tiny_data
        images = val_set.images[:8]
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=1.0, max_queue=16)
        expected_lanes = {ModelKey.parse(s).spec for s in (SPEC, FLOAT_SPEC)}
        stop = threading.Event()
        errors = []

        with ServeEngine(registry, policy) as engine:
            for spec in (SPEC, FLOAT_SPEC):
                engine.warm(spec)

            def pound(spec):
                index = 0
                while not stop.is_set():
                    try:
                        handle = engine.submit(spec, images[index % len(images)])
                        handle.result(timeout=30.0)
                    except QueueFullError:
                        pass
                    except Exception as error:  # pragma: no cover - fail loud
                        errors.append(error)
                        return
                    index += 1

            threads = [
                threading.Thread(target=pound, args=(spec,), daemon=True)
                for spec in (SPEC, FLOAT_SPEC)
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()

            last = {"requests_total": 0, "responses_total": 0, "rejected_total": 0}
            for _ in range(60):
                snap = engine.snapshot()
                lanes = snap["lanes"]
                assert set(lanes) == expected_lanes
                for view in lanes.values():
                    assert self.LANE_KEYS <= set(view)
                    assert view["queued"] >= 0
                    assert view["in_flight"] >= 0
                # timeouts_total is derived from the same per-lane reads, so
                # it must agree exactly with the views it was computed from.
                assert snap["timeouts_total"] == sum(
                    view["timed_out"] for view in lanes.values()
                )
                counters = snap["counters"]
                for name, floor in last.items():
                    value = counters.get(name, 0)
                    assert value >= floor, name
                    last[name] = value
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            final = engine.snapshot()["counters"]
        assert not errors
        assert final.get("responses_total", 0) > 0  # traffic actually flowed
