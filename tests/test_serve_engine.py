"""End-to-end tests for the serving engine and the benchmark driver."""

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    QueueFullError,
    ServeEngine,
    format_snapshot,
    run_serve_benchmark,
)
from tests.test_serve_registry import tiny_loader

SPEC = "vit_s/quq/4"


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=2,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


class TestServeEngine:
    def test_results_match_direct_inference(self, registry, tiny_data):
        _, val_set = tiny_data
        images = val_set.images[:12]
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0, max_queue=64)
        with ServeEngine(registry, policy) as engine:
            engine.warm(SPEC)
            reference = registry.get(SPEC).predict(images).argmax(axis=-1)
            handles = [engine.submit(SPEC, image) for image in images]
            results = [handle.result(timeout=30.0) for handle in handles]

        assert [r.label for r in results] == list(reference)
        assert all(r.quantized for r in results)
        assert all(1 <= r.batch_size <= 4 for r in results)
        snapshot = engine.snapshot()
        assert snapshot["counters"]["responses_total"] == 12
        assert snapshot["counters"]["requests_total"] == 12
        assert snapshot["histograms"]["e2e_latency_ms"]["count"] == 12
        assert sum(
            int(size) * count
            for size, count in snapshot["distributions"]["batch_size"].items()
        ) == 12

    def test_backpressure_surfaces_queue_full(self, registry, tiny_data):
        _, val_set = tiny_data
        # With a queue bound of 1 and batch size 1, a burst of submissions
        # races the worker; the exact rejection count depends on timing, so
        # only the accounting invariant is asserted (the deterministic
        # rejection behaviour itself is covered in test_serve_scheduler).
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=1)
        with ServeEngine(registry, policy) as engine:
            engine.warm(SPEC)
            rejected = 0
            handles = []
            for image in val_set.images[:32]:
                try:
                    handles.append(engine.submit(SPEC, image))
                except QueueFullError:
                    rejected += 1
            for handle in handles:
                handle.result(timeout=30.0)
        assert rejected + len(handles) == 32
        assert engine.snapshot()["counters"].get("rejected_total", 0) == rejected

    def test_degraded_model_still_serves(self, tmp_path, tiny_data):
        def broken_calib():
            raise RuntimeError("no calibration data")

        registry = ModelRegistry(
            capacity=2, artifact_dir=tmp_path, loader=tiny_loader,
            calib_provider=broken_calib,
        )
        _, val_set = tiny_data
        with ServeEngine(registry) as engine:
            handle = engine.submit(SPEC, val_set.images[0])
            result = handle.result(timeout=30.0)
        assert not result.quantized  # float fallback answered
        assert registry.snapshot()["fallbacks"] == 1

    def test_stop_rejects_new_work(self, registry):
        engine = ServeEngine(registry)
        engine.stop()
        with pytest.raises(RuntimeError):
            engine.submit(SPEC, np.zeros((16, 16, 3), dtype=np.float32))


@pytest.mark.slow
class TestServeBenchmark:
    def test_open_loop_run_produces_full_snapshot(self, registry):
        policy = BatchPolicy(
            max_batch_size=8, max_wait_ms=5.0, max_queue=256, timeout_ms=30000.0
        )
        with ServeEngine(registry, policy) as engine:
            snapshot = run_serve_benchmark(
                engine, SPEC, requests=200, rate=500.0, image_size=16
            )
        summary = snapshot["summary"]
        assert summary["completed"] == 200
        assert summary["throughput_rps"] > 0
        latency = snapshot["histograms"]["e2e_latency_ms"]
        assert latency["count"] == 200
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert snapshot["distributions"]["batch_size"]
        # Warmed once, then every batch is a registry hit.
        assert snapshot["registry"]["hit_rate"] > 0.5
        rendered = format_snapshot(snapshot)
        assert "Serving benchmark" in rendered
        assert "Batch-size distribution" in rendered
        assert "Registry" in rendered
