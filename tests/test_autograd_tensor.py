"""Tests for the autograd Tensor primitives."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, check_gradients, is_grad_enabled, no_grad


class TestConstruction:
    def test_float64_downcast(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_int_input_becomes_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor(2.0), Tensor)


class TestArithmetic:
    def test_add_values_and_grads(self, rng):
        check_gradients(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_add_broadcast_grad(self, rng):
        check_gradients(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(4,))])

    def test_scalar_radd(self):
        t = 2.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(t.data, [3.0, 4.0])

    def test_mul_grads(self, rng):
        check_gradients(lambda a, b: a * b, [rng.normal(size=(2, 5)), rng.normal(size=(2, 5))])

    def test_div_grads(self, rng):
        check_gradients(
            lambda a, b: a / b,
            [rng.normal(size=(3,)), rng.uniform(1.0, 2.0, size=(3,))],
        )

    def test_rsub_rdiv(self):
        t = Tensor([2.0])
        np.testing.assert_allclose((3.0 - t).data, [1.0])
        np.testing.assert_allclose((4.0 / t).data, [2.0])

    def test_neg(self, rng):
        check_gradients(lambda a: -a, [rng.normal(size=(4,))])

    def test_pow_grads(self, rng):
        check_gradients(lambda a: a**3, [rng.normal(size=(4,))])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestMatmul:
    def test_matmul_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a.astype(np.float32) @ b.astype(np.float32), rtol=1e-5)

    def test_matmul_grads_2d(self, rng):
        check_gradients(lambda a, b: a @ b, [rng.normal(size=(3, 4)), rng.normal(size=(4, 2))])

    def test_matmul_grads_batched_times_2d(self, rng):
        # The fused Linear backward path (batched activations x 2-D weight).
        check_gradients(
            lambda a, b: a @ b, [rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 2))]
        )

    def test_matmul_grads_batched_both(self, rng):
        check_gradients(
            lambda a, b: a @ b,
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 3))],
        )


class TestShapeOps:
    def test_reshape_grads(self, rng):
        check_gradients(lambda a: a.reshape(6), [rng.normal(size=(2, 3))])

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros((2, 3))).reshape((3, 2))
        assert t.shape == (3, 2)

    def test_transpose_grads(self, rng):
        check_gradients(lambda a: a.transpose(1, 0, 2), [rng.normal(size=(2, 3, 4))])

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4))).transpose()
        assert t.shape == (4, 3, 2)

    def test_swapaxes_grads(self, rng):
        check_gradients(lambda a: a.swapaxes(-1, -2), [rng.normal(size=(2, 3, 4))])

    def test_getitem_basic_grads(self, rng):
        check_gradients(lambda a: a[1], [rng.normal(size=(3, 4))])
        check_gradients(lambda a: a[:, 1:3], [rng.normal(size=(3, 4))])

    def test_getitem_fancy_grad_accumulates(self):
        t = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = t[np.array([0, 0, 2])]
        out.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all_grads(self, rng):
        check_gradients(lambda a: a.sum(), [rng.normal(size=(3, 4))])

    def test_sum_axis_keepdims(self, rng):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [rng.normal(size=(3, 4))])

    def test_mean_matches_numpy(self, rng):
        a = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(Tensor(a).mean(axis=0).data, a.mean(axis=0), rtol=1e-5)

    def test_mean_grads(self, rng):
        check_gradients(lambda a: a.mean(axis=-1), [rng.normal(size=(2, 5))])

    def test_max_axis(self, rng):
        a = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1))


class TestTranscendental:
    def test_exp_log_sqrt_tanh_grads(self, rng):
        positive = rng.uniform(0.5, 2.0, size=(4,))
        check_gradients(lambda a: a.exp(), [rng.normal(size=(4,))])
        check_gradients(lambda a: a.log(), [positive])
        check_gradients(lambda a: a.sqrt(), [positive])
        check_gradients(lambda a: a.tanh(), [rng.normal(size=(4,))])


class TestBackwardMachinery:
    def test_grad_accumulates_over_backward_calls(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0).backward()
        (t * 3.0).backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_diamond_graph_grad(self):
        # y = x*x + x: dy/dx = 2x + 1
        x = Tensor([3.0], requires_grad=True)
        (x * x + x).backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_intermediate_nodes_do_not_retain_grad(self):
        x = Tensor([1.0], requires_grad=True)
        mid = x * 2.0
        (mid * 3.0).backward()
        assert mid.grad is None
        assert x.grad is not None

    def test_no_grad_disables_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = x * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        out = x.detach() * 2.0
        assert not out.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_reused_tensor_accumulates_once_per_path(self):
        x = Tensor([1.0], requires_grad=True)
        y = x + x + x
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])
