"""Tests for fitted-quantizer serialization (warm-start state).

The contract is *bit-exact* round trips: a reloaded quantizer must produce
identical ``quantize()``/``fake_quantize()`` outputs, so a warm-started
serving pipeline is indistinguishable from a freshly calibrated one.
"""

import numpy as np
import pytest

from repro.quant import (
    AsymmetricUniformQuantizer,
    BiScaledQuantizer,
    Log2Quantizer,
    PTQPipeline,
    QUQQuantizer,
    RowwiseUniformQuantizer,
    TwinUniformQuantizer,
    UniformQuantizer,
    load_quantizer_states,
    quantizer_from_state,
    quantizer_state,
    save_quantizer_states,
)
from repro.training import predict_logits


def _roundtrip(quantizer):
    meta, arrays = quantizer_state(quantizer)
    return quantizer_from_state(meta, arrays)


QUANTIZER_FACTORIES = [
    lambda rng: UniformQuantizer(6).fit(rng.normal(size=500)),
    lambda rng: UniformQuantizer(4, percentile=99.0).fit(rng.normal(size=500)),
    lambda rng: AsymmetricUniformQuantizer(6).fit(rng.normal(size=500) + 1.3),
    lambda rng: RowwiseUniformQuantizer(6, axis=0).fit(rng.normal(size=(8, 16))),
    lambda rng: BiScaledQuantizer(6).fit(rng.standard_t(df=3, size=2000)),
    lambda rng: Log2Quantizer(4).fit(rng.uniform(size=300)),
    lambda rng: TwinUniformQuantizer(6, split="sign").fit(rng.normal(size=800)),
    lambda rng: TwinUniformQuantizer(6, split="magnitude").fit(rng.normal(size=800)),
    lambda rng: QUQQuantizer(6).fit(rng.standard_t(df=3, size=2000) * 0.1),
    lambda rng: QUQQuantizer(4).fit(rng.uniform(size=1000)),  # one-sided -> Mode B
]


class TestQuantizerRoundTrip:
    @pytest.mark.parametrize("factory", QUANTIZER_FACTORIES)
    def test_fake_quantize_bit_exact(self, factory, rng):
        original = factory(rng)
        restored = _roundtrip(original)
        x = rng.normal(size=700).astype(np.float32)
        if isinstance(original, Log2Quantizer):
            x = np.abs(x)
        if isinstance(original, RowwiseUniformQuantizer):
            x = rng.normal(size=(8, 16)).astype(np.float32)
        np.testing.assert_array_equal(
            original.fake_quantize(x), restored.fake_quantize(x)
        )

    def test_quantize_codes_bit_exact(self, rng):
        original = QUQQuantizer(6).fit(rng.standard_t(df=3, size=2000) * 0.1)
        restored = _roundtrip(original)
        x = rng.normal(size=500)
        a, b = original.quantize(x), restored.quantize(x)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.subranges, b.subranges)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            quantizer_state(UniformQuantizer(6))

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            quantizer_from_state({"class": "MysteryQuantizer", "bits": 6}, {})


class TestStateArchive:
    def test_save_load_many(self, rng, tmp_path):
        quantizers = {
            "a.weight": QUQQuantizer(6).fit(rng.normal(size=900)),
            "a.input": UniformQuantizer(6).fit(rng.normal(size=900)),
            "b.probs": Log2Quantizer(6).fit(rng.uniform(size=900)),
        }
        path = save_quantizer_states(
            quantizers, tmp_path / "state.npz", header={"method": "mixed"}
        )
        header, restored = load_quantizer_states(path)
        assert header == {"method": "mixed"}
        assert set(restored) == set(quantizers)
        x = rng.normal(size=300)
        np.testing.assert_array_equal(
            quantizers["a.weight"].fake_quantize(x),
            restored["a.weight"].fake_quantize(x),
        )

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ValueError):
            load_quantizer_states(path)


class TestChecksum:
    def _save(self, rng, path):
        quantizers = {
            "blk.weight": QUQQuantizer(6).fit(rng.normal(size=900)),
            "blk.input": UniformQuantizer(6).fit(rng.normal(size=900)),
        }
        return save_quantizer_states(quantizers, path, header={"method": "quq"})

    def test_clean_archive_verifies(self, rng, tmp_path):
        path = self._save(rng, tmp_path / "state.npz")
        header, restored = load_quantizer_states(path)  # no ChecksumError
        assert set(restored) == {"blk.weight", "blk.input"}

    def test_tampered_array_payload_is_rejected(self, rng, tmp_path):
        from repro.quant import ChecksumError
        from repro.resilience import tamper_quantizer_state

        path = self._save(rng, tmp_path / "state.npz")
        tamper_quantizer_state(path, seed=0)
        with pytest.raises(ChecksumError):
            load_quantizer_states(path)

    def _strip_checksum(self, path):
        import json

        with np.load(path, allow_pickle=False) as handle:
            payload = {name: handle[name] for name in handle.files}
        record = json.loads(str(payload["__meta__"][()]))
        record.pop("checksum", None)  # what a pre-checksum writer wrote
        payload["__meta__"] = np.array(json.dumps(record))
        np.savez(path, **payload)

    def test_legacy_archive_without_checksum_still_loads(self, rng, tmp_path):
        path = self._save(rng, tmp_path / "state.npz")
        self._strip_checksum(path)
        header, restored = load_quantizer_states(path)  # unverified but loadable
        assert set(restored) == {"blk.weight", "blk.input"}

    def test_require_checksum_rejects_legacy_archives(self, rng, tmp_path):
        from repro.quant import ChecksumError

        path = self._save(rng, tmp_path / "state.npz")
        load_quantizer_states(path, require_checksum=True)  # checksummed: fine
        self._strip_checksum(path)
        with pytest.raises(ChecksumError, match="no checksum"):
            load_quantizer_states(path, require_checksum=True)


class TestPipelineWarmStart:
    def test_roundtrip_matches_calibrated_outputs(
        self, tiny_trained, calib_images, tiny_data, tmp_path
    ):
        _, val_set = tiny_data
        images = val_set.images[:16]
        pipeline = PTQPipeline(tiny_trained, "quq", 6, "full").calibrate(calib_images)
        reference = predict_logits(tiny_trained, images)
        path = pipeline.save_quantizers(tmp_path / "warm.npz")
        pipeline.detach()

        warm = PTQPipeline(tiny_trained, "quq", 6, "full").load_quantizers(path)
        assert warm.calibrated
        assert warm.tap_names() == sorted(warm.env.quantizers)
        np.testing.assert_array_equal(predict_logits(tiny_trained, images), reference)
        warm.detach()

    def test_header_mismatch_rejected(self, tiny_trained, calib_images, tmp_path):
        pipeline = PTQPipeline(tiny_trained, "baseq", 6, "full").calibrate(calib_images)
        path = pipeline.save_quantizers(tmp_path / "warm.npz")
        pipeline.detach()
        with pytest.raises(ValueError, match="bits"):
            PTQPipeline(tiny_trained, "baseq", 8, "full").load_quantizers(path)
        with pytest.raises(ValueError, match="method"):
            PTQPipeline(tiny_trained, "quq", 6, "full").load_quantizers(path)

    def test_save_requires_calibration(self, tiny_trained, tmp_path):
        pipeline = PTQPipeline(tiny_trained, "quq", 6, "full")
        with pytest.raises(RuntimeError):
            pipeline.save_quantizers(tmp_path / "warm.npz")
