"""Tests for the corruption-sweep and recovery-curve harnesses.

Accuracy *values* are meaningless on the untrained tiny model (its logits
are near-uniform), so these tests pin structure, determinism, and the
drift -> recalibrate -> swap mechanics; the accuracy-level acceptance
checks run against the trained zoo model in
``benchmarks/bench_corruption_robustness.py``.
"""

import json

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.analysis import (
    CorruptionSweepConfig,
    RecoveryCurveConfig,
    format_corruption_sweep,
    format_recovery_report,
    run_corruption_sweep,
    run_recovery_curve,
)
from repro.models.configs import ModelConfig
from repro.models.vit import build_vit
from repro.quant.drift import DriftThresholds
from repro.serve import DriftPolicy, ModelRegistry
from tests.test_serve_registry import tiny_loader

TINY = ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)


@pytest.fixture
def registry(tmp_path, calib_images):
    return ModelRegistry(
        capacity=4,
        artifact_dir=tmp_path,
        loader=tiny_loader,
        calib_provider=lambda: calib_images[:16],
    )


def recovery_config(**overrides):
    defaults = dict(
        spec="vit_s/quq/4",
        corruption="gaussian_noise",
        severity=4,
        eval_count=32,
        stream_batches=6,
        batch_size=16,
        seed=0,
        policy=DriftPolicy(
            thresholds=DriftThresholds(consecutive=2, min_samples=64),
            sample_every=2,
            buffer_size=48,
            min_recalibration_images=16,
            canary_count=8,
            canary_agreement_floor=0.0,  # untrained model: agreement ~0
            cooldown_s=3600.0,
        ),
    )
    defaults.update(overrides)
    return RecoveryCurveConfig(**defaults)


class TestCorruptionSweep:
    def test_grid_structure_and_determinism(self, tiny_data, calib_images):
        _, val_set = tiny_data
        model = build_vit(TINY, seed=0)
        config = CorruptionSweepConfig(
            methods=("fp32", "quq"),
            corruptions=("gaussian_noise", "occlusion"),
            severities=(1, 4),
            bits=4,
            eval_count=32,
            seed=0,
        )
        report = run_corruption_sweep(model, calib_images, val_set, config)
        assert len(report["rows"]) == 2 * 2 * 2
        assert set(report["summary"]) == {"fp32", "quq"}
        for entry in report["summary"].values():
            assert np.isfinite(entry["clean_top1"])
        rerun = run_corruption_sweep(model, calib_images, val_set, config)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            rerun, sort_keys=True
        )
        text = format_corruption_sweep(report)
        assert "gaussian_noise" in text and "degradation" in text

    def test_model_left_detached(self, tiny_data, calib_images):
        _, val_set = tiny_data
        model = build_vit(TINY, seed=0)
        config = CorruptionSweepConfig(
            methods=("quq",), corruptions=("blur",), severities=(3,),
            bits=4, eval_count=16, seed=0,
        )
        before = model(Tensor(val_set.images[:4])).data
        run_corruption_sweep(model, calib_images, val_set, config)
        after = model(Tensor(val_set.images[:4])).data
        np.testing.assert_array_equal(before, after)

    def test_rejects_unknown_inputs(self):
        with pytest.raises(ValueError):
            CorruptionSweepConfig(methods=("awq",))
        with pytest.raises(ValueError):
            CorruptionSweepConfig(corruptions=("fog",))
        with pytest.raises(ValueError):
            CorruptionSweepConfig(severities=(0,))


class TestRecoveryCurve:
    def test_drift_fires_swaps_and_is_deterministic(
        self, registry, tiny_data, calib_images, tmp_path
    ):
        _, val_set = tiny_data
        report = run_recovery_curve(
            registry, val_set, calib_images, recovery_config()
        )
        checks = report["checks"]
        assert checks["no_false_positive_on_clean"], checks
        assert checks["monitor_fired_and_swapped"], checks
        assert checks["zero_nonfinite_served"], checks
        assert checks["swap_counted_in_snapshot"], checks
        assert report["swap_batch"] is not None
        assert len(report["recovery_curve"]) == 6
        assert report["snapshot"]["counters"]["recalibration_swaps_total"] == 1

        # Same seed from a fresh registry -> byte-identical report.
        rerun_registry = ModelRegistry(
            capacity=4,
            artifact_dir=tmp_path / "rerun",
            loader=tiny_loader,
            calib_provider=lambda: calib_images[:16],
        )
        rerun = run_recovery_curve(
            rerun_registry, val_set, calib_images, recovery_config()
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(
            rerun, sort_keys=True
        )
        text = format_recovery_report(report)
        assert "<- swap" in text and "Checks" in text

    def test_needs_enough_validation_images(self, registry, tiny_data, calib_images):
        _, val_set = tiny_data
        with pytest.raises(ValueError, match="images"):
            run_recovery_curve(
                registry, val_set, calib_images,
                recovery_config(stream_batches=40),
            )
