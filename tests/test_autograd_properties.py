"""Property-based tests for the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, concat, softmax

shapes = st.sampled_from([(3,), (2, 4), (2, 3, 4), (1, 5)])
seeds = st.integers(0, 10_000)


def _array(shape, seed, scale=1.0):
    return (np.random.default_rng(seed).normal(size=shape) * scale).astype(np.float64)


class TestAlgebraicIdentities:
    @given(shapes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, shape, seed):
        a, b = _array(shape, seed), _array(shape, seed + 1)
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_array_equal(left, right)

    @given(shapes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_mul_distributes_over_add(self, shape, seed):
        a, b, c = (_array(shape, seed + i) for i in range(3))
        lhs = (Tensor(a) * (Tensor(b) + Tensor(c))).data
        rhs = (Tensor(a) * Tensor(b) + Tensor(a) * Tensor(c)).data
        np.testing.assert_allclose(lhs, rhs, rtol=1e-5, atol=1e-6)

    @given(shapes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_double_negation(self, shape, seed):
        a = _array(shape, seed)
        np.testing.assert_array_equal((-(-Tensor(a))).data, Tensor(a).data)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_matmul_associativity(self, seed):
        a, b, c = _array((2, 3), seed), _array((3, 4), seed + 1), _array((4, 2), seed + 2)
        lhs = ((Tensor(a) @ Tensor(b)) @ Tensor(c)).data
        rhs = (Tensor(a) @ (Tensor(b) @ Tensor(c))).data
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-5)


class TestGradientProperties:
    @given(shapes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_sum_of_parts_grad(self, shape, seed):
        """d(sum(a*b))/da == b for any shapes (linearity)."""
        a = _array(shape, seed)
        b = _array(shape, seed + 1)
        ta = Tensor(a.astype(np.float32), requires_grad=True)
        (ta * Tensor(b)).sum().backward()
        np.testing.assert_allclose(ta.grad, b, rtol=1e-5, atol=1e-6)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_softmax_grad_orthogonal_to_ones(self, seed):
        """Softmax rows sum to 1, so row gradients must sum to ~0."""
        x = Tensor(_array((3, 5), seed).astype(np.float32), requires_grad=True)
        out = softmax(x, axis=-1)
        out.backward(_array((3, 5), seed + 1).astype(np.float32))
        np.testing.assert_allclose(x.grad.sum(axis=-1), np.zeros(3), atol=1e-5)

    @given(seeds, st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_concat_split_inverse_grads(self, seed, parts):
        arrays = [_array((2, 3), seed + i) for i in range(parts)]
        check_gradients(lambda *ts: concat(ts, axis=0), arrays)

    @given(shapes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_broadcast_scalar_grad_counts_elements(self, shape, seed):
        scalar = Tensor(np.float32(2.0), requires_grad=True)
        other = Tensor(_array(shape, seed).astype(np.float32))
        (scalar * other).sum().backward()
        np.testing.assert_allclose(
            scalar.grad, other.data.sum(), rtol=1e-4
        )
