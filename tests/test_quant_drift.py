"""Tests for calibration fingerprints and the activation-drift monitor."""

import numpy as np
import pytest

from repro.quant import PTQPipeline
from repro.quant.drift import (
    INPUT_TAP,
    DriftMonitor,
    DriftThresholds,
    TapFingerprint,
    TapStatsRecorder,
    fingerprint_pipeline,
    population_stability_index,
)
from repro.quant.observers import TapKind, classify_tap


@pytest.fixture(scope="module")
def reference():
    return np.random.default_rng(0).normal(0.0, 1.0, size=20000)


@pytest.fixture(scope="module")
def fingerprint(reference):
    return TapFingerprint.from_data(reference)


class TestPSI:
    def test_identical_distributions_score_zero(self):
        probs = np.full(16, 1 / 16)
        assert population_stability_index(probs, probs) == pytest.approx(0.0)

    def test_shift_scores_positive_and_grows(self):
        base = np.full(16, 1 / 16)
        mild = base.copy()
        mild[0] += 0.05
        severe = base.copy()
        severe[0] += 0.5
        assert 0 < population_stability_index(base, mild) < population_stability_index(
            base, severe
        )


class TestTapFingerprint:
    def test_same_distribution_is_quiet(self, fingerprint):
        live = np.random.default_rng(1).normal(0.0, 1.0, size=4096)
        scores = fingerprint.compare(live)
        assert scores.psi < 0.1
        assert scores.clip_rate < 0.05
        assert scores.overflow_ratio < 1.5
        assert scores.nonfinite_rate == 0.0
        assert not scores.reasons(DriftThresholds())

    def test_scaled_distribution_overflows(self, fingerprint):
        live = np.random.default_rng(1).normal(0.0, 3.0, size=4096)
        scores = fingerprint.compare(live)
        reasons = scores.reasons(DriftThresholds())
        assert scores.overflow_ratio > 1.5 and scores.clip_rate > 0.05
        assert any("overflow" in r for r in reasons)
        assert any("clip_rate" in r for r in reasons)

    def test_shifted_distribution_moves_psi(self, fingerprint):
        live = np.random.default_rng(1).normal(2.5, 0.3, size=4096)
        assert fingerprint.compare(live).psi > 0.25

    def test_nonfinite_values_count_as_clipped(self, fingerprint):
        live = np.random.default_rng(1).normal(0.0, 1.0, size=1000)
        live[:100] = np.inf
        scores = fingerprint.compare(live)
        assert scores.nonfinite_rate == pytest.approx(0.1)
        assert scores.clip_rate >= 0.1
        assert any("nonfinite" in r for r in scores.reasons(DriftThresholds()))

    def test_dict_round_trip(self, fingerprint, reference):
        clone = TapFingerprint.from_dict(fingerprint.to_dict())
        live = np.random.default_rng(2).normal(0.5, 1.2, size=2048)
        original = fingerprint.compare(live)
        restored = clone.compare(live)
        assert restored.psi == pytest.approx(original.psi)
        assert restored.clip_rate == pytest.approx(original.clip_rate)
        assert restored.overflow_ratio == pytest.approx(original.overflow_ratio)

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            DriftThresholds(psi=0.0)
        with pytest.raises(ValueError):
            DriftThresholds(consecutive=0)


class TestDriftMonitor:
    def _monitor(self, fingerprint, **kwargs):
        defaults = dict(consecutive=3, min_samples=100)
        defaults.update(kwargs)
        return DriftMonitor(
            {INPUT_TAP: fingerprint}, DriftThresholds(**defaults)
        )

    def test_clean_batches_never_alert(self, fingerprint):
        monitor = self._monitor(fingerprint)
        rng = np.random.default_rng(3)
        for _ in range(10):
            monitor.observe(INPUT_TAP, rng.normal(0.0, 1.0, size=512))
            verdict = monitor.complete_batch()
            assert not verdict.drifted and not verdict.sustained
        assert monitor.alerts == 0

    def test_sustained_requires_consecutive_batches(self, fingerprint):
        monitor = self._monitor(fingerprint)
        rng = np.random.default_rng(3)
        verdicts = []
        for _ in range(4):
            monitor.observe(INPUT_TAP, rng.normal(0.0, 4.0, size=512))
            verdicts.append(monitor.complete_batch())
        assert [v.drifted for v in verdicts] == [True] * 4
        assert [v.sustained for v in verdicts] == [False, False, True, True]
        assert monitor.alerts == 1  # one entry into the sustained state

    def test_min_samples_gates_sustained(self, fingerprint):
        monitor = self._monitor(fingerprint, min_samples=10_000)
        rng = np.random.default_rng(3)
        for _ in range(5):
            monitor.observe(INPUT_TAP, rng.normal(0.0, 4.0, size=512))
            verdict = monitor.complete_batch()
        assert verdict.drifted and not verdict.sustained

    def test_clean_batch_resets_the_streak(self, fingerprint):
        monitor = self._monitor(fingerprint)
        rng = np.random.default_rng(3)
        for scale in (4.0, 4.0, 1.0, 4.0, 4.0):
            monitor.observe(INPUT_TAP, rng.normal(0.0, scale, size=512))
            verdict = monitor.complete_batch()
        assert monitor.consecutive_drifted == 2
        assert not verdict.sustained and monitor.alerts == 0

    def test_reset_clears_streak_but_keeps_alert_count(self, fingerprint):
        monitor = self._monitor(fingerprint)
        rng = np.random.default_rng(3)
        for _ in range(3):
            monitor.observe(INPUT_TAP, rng.normal(0.0, 4.0, size=512))
            monitor.complete_batch()
        assert monitor.alerts == 1
        monitor.reset()
        assert monitor.consecutive_drifted == 0 and monitor.samples_seen == 0
        assert monitor.alerts == 1
        snapshot = monitor.snapshot()
        assert snapshot["alerts"] == 1 and snapshot["consecutive_drifted"] == 0

    def test_unknown_tap_is_ignored(self, fingerprint):
        monitor = self._monitor(fingerprint)
        assert monitor.observe("not_a_tap", np.ones(8)) is None
        verdict = monitor.complete_batch()
        assert not verdict.drifted

    def test_requires_fingerprints(self):
        with pytest.raises(ValueError):
            DriftMonitor({})


class TestFingerprintPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, calib_images):
        from repro.models.configs import ModelConfig
        from repro.models.vit import build_vit

        tiny = ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)
        pipeline = PTQPipeline(
            build_vit(tiny, seed=0), method="quq", bits=6, coverage="full"
        )
        pipeline.calibrate(calib_images)
        return pipeline

    def test_covers_activation_taps_plus_input(self, pipeline, calib_images):
        fingerprints = fingerprint_pipeline(pipeline, calib_images)
        assert INPUT_TAP in fingerprints
        names = set(fingerprints) - {INPUT_TAP}
        assert names  # at least one activation tap
        assert all(classify_tap(n) is not TapKind.WEIGHT for n in names)
        expected = {
            n for n in pipeline.tap_names()
            if classify_tap(n) is not TapKind.WEIGHT
        }
        assert names == expected

    def test_restores_quantize_phase_and_recorder(self, pipeline, calib_images):
        sentinel = object()
        pipeline.env.stats_recorder = sentinel
        try:
            fingerprint_pipeline(pipeline, calib_images)
            assert pipeline.env.phase == "quantize"
            assert pipeline.env.stats_recorder is sentinel
        finally:
            pipeline.env.stats_recorder = None

    def test_fingerprints_match_live_recorder_stats(self, pipeline, calib_images):
        """Clean traffic through the live recorder must look un-drifted —
        fingerprints and recorder observe the same (quantize-phase) values."""
        from repro.autograd import Tensor, no_grad

        fingerprints = fingerprint_pipeline(pipeline, calib_images)
        monitor = DriftMonitor(
            fingerprints, DriftThresholds(consecutive=1, min_samples=1)
        )
        pipeline.env.stats_recorder = TapStatsRecorder(monitor)
        try:
            with no_grad():
                pipeline.model(Tensor(calib_images[:16]))
        finally:
            pipeline.env.stats_recorder = None
        monitor.observe(INPUT_TAP, calib_images[:16])
        verdict = monitor.complete_batch()
        assert not verdict.drifted, verdict.reasons
