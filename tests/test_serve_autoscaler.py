"""Tests for the elastic control plane (autoscaler policy loop).

The autoscaler is deliberately duck-typed over the engine surface, so
the whole policy — hysteresis, cooldown, crash-loop quarantine with
exponential backoff, drained scale-down, capacity borrowing — is driven
here against a fake engine on a fake clock, with zero processes.
"""

import pytest

from repro.serve.autoscaler import AutoscalePolicy, Autoscaler


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeLane:
    def __init__(self, shards=1, capacity=64):
        self.shards = shards
        self.queue_depth = 0
        self.queue_capacity = capacity
        self.in_flight = 0
        self.quarantined = False
        self.crash_times = []
        self.retire_drains = True  # set False to simulate a stuck drain


class FakeElasticEngine:
    """Bookkeeping double for the ClusterEngine elastic surface."""

    def __init__(self, specs=("vit_s/quq/6",), shards=1):
        self.lanes = {spec: FakeLane(shards=shards) for spec in specs}
        self.calls = []

    def lane_specs(self):
        return sorted(self.lanes)

    def lane_stats(self, spec):
        lane = self.lanes.get(spec)
        if lane is None:
            return None
        return {
            "spec": spec,
            "queue_depth": lane.queue_depth,
            "queue_capacity": lane.queue_capacity,
            "in_flight": lane.in_flight,
            "shards": lane.shards,
            "quarantined": lane.quarantined,
            "crash_times": list(lane.crash_times),
        }

    def add_shard(self, spec):
        self.calls.append(("add", spec))
        self.lanes[spec].shards += 1
        return True

    def retire_shard(self, spec, index=None, drain_timeout_s=10.0):
        lane = self.lanes[spec]
        self.calls.append(("retire", spec))
        if not lane.retire_drains or lane.shards <= 1:
            return False
        lane.shards -= 1
        return True

    def quarantine_lane(self, spec):
        self.calls.append(("quarantine", spec))
        self.lanes[spec].quarantined = True
        return True

    def clear_quarantine(self, spec):
        self.calls.append(("clear", spec))
        self.lanes[spec].quarantined = False
        return True


SPEC = "vit_s/quq/6"


def make_scaler(engine=None, **overrides):
    clock = FakeClock()
    defaults = dict(
        min_shards=1, max_shards=4, scale_up_pressure=0.5,
        scale_up_sustain=2, scale_down_idle=0.05, scale_down_sustain=3,
        cooldown_s=1.0, crash_loop_threshold=3, crash_window_s=10.0,
        quarantine_base_s=2.0, quarantine_max_s=8.0,
        borrow_budget=1, borrow_pressure=0.8, lender_idle=0.1,
    )
    defaults.update(overrides)
    engine = FakeElasticEngine() if engine is None else engine
    scaler = Autoscaler(engine, AutoscalePolicy(**defaults), clock=clock)
    return scaler, engine, clock


class TestPolicyValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscalePolicy(min_shards=3, max_shards=2)
        with pytest.raises(ValueError, match="scale_down_idle"):
            AutoscalePolicy(scale_down_idle=0.6, scale_up_pressure=0.5)
        with pytest.raises(ValueError, match="lender_idle"):
            AutoscalePolicy(lender_idle=0.9, borrow_pressure=0.8)
        with pytest.raises(ValueError, match="quarantine_base_s"):
            AutoscalePolicy(quarantine_base_s=9.0, quarantine_max_s=3.0)


class TestScaleUp:
    def test_sustained_pressure_scales_up(self):
        scaler, engine, clock = make_scaler()
        engine.lanes[SPEC].queue_depth = 40  # 40/64 > 0.5
        assert scaler.tick() == []  # one pressured tick is not enough
        clock.advance(0.1)
        events = scaler.tick()
        assert [e["action"] for e in events] == ["scale_up"]
        assert engine.lanes[SPEC].shards == 2

    def test_single_noisy_sample_does_not_scale(self):
        scaler, engine, clock = make_scaler()
        engine.lanes[SPEC].queue_depth = 40
        scaler.tick()
        engine.lanes[SPEC].queue_depth = 10  # pressure gone; counter resets
        clock.advance(0.1)
        scaler.tick()
        engine.lanes[SPEC].queue_depth = 40
        clock.advance(0.1)
        assert scaler.tick() == []  # sustain must restart from zero
        assert engine.lanes[SPEC].shards == 1

    def test_respects_max_shards(self):
        scaler, engine, clock = make_scaler(max_shards=2, cooldown_s=0.0)
        engine.lanes[SPEC].queue_depth = 60
        for _ in range(8):
            scaler.tick()
            clock.advance(0.5)
        assert engine.lanes[SPEC].shards == 2

    def test_ladder_level_alone_needs_backing_queue(self):
        # A stale admission ladder (level high, queue empty) must not
        # count as pressure — the level only updates on decisions.
        class StuckAdmission:
            def current_level(self):
                return 3

        clock = FakeClock()
        engine = FakeElasticEngine()
        scaler = Autoscaler(
            engine, AutoscalePolicy(scale_up_sustain=2, cooldown_s=0.0),
            clock=clock, admission=StuckAdmission(),
        )
        for _ in range(4):
            scaler.tick()
            clock.advance(0.5)
        assert engine.lanes[SPEC].shards == 1
        # With even a modest backlog the ladder level does count.
        engine.lanes[SPEC].queue_depth = 8  # 12.5% < scale_up_pressure
        for _ in range(3):
            scaler.tick()
            clock.advance(0.5)
        assert engine.lanes[SPEC].shards == 2


class TestCooldownAndScaleDown:
    def test_no_flapping_inside_cooldown(self):
        scaler, engine, clock = make_scaler(cooldown_s=5.0)
        engine.lanes[SPEC].queue_depth = 60
        scaler.tick()
        clock.advance(0.1)
        scaler.tick()  # scale up fires here
        assert engine.lanes[SPEC].shards == 2
        for _ in range(10):  # still pressured, but inside cooldown
            clock.advance(0.2)
            assert scaler.tick() == []
        assert engine.lanes[SPEC].shards == 2
        clock.advance(5.0)  # cooldown over; pressure still sustained
        scaler.tick()
        assert engine.lanes[SPEC].shards == 3

    def test_sustained_idle_scales_down_to_floor(self):
        scaler, engine, clock = make_scaler(cooldown_s=0.0)
        engine.lanes[SPEC].shards = 3
        down = 0
        for _ in range(12):
            down += sum(
                1 for e in scaler.tick() if e["action"] == "scale_down"
            )
            clock.advance(0.5)
        assert engine.lanes[SPEC].shards == 1  # never below min_shards
        assert down == 2

    def test_aborted_drain_is_retried(self):
        scaler, engine, clock = make_scaler(cooldown_s=0.0, scale_down_sustain=2)
        lane = engine.lanes[SPEC]
        lane.shards = 2
        lane.retire_drains = False
        for _ in range(3):
            scaler.tick()
            clock.advance(0.5)
        aborted = [e for e in scaler.events if e["action"] == "scale_down_aborted"]
        assert aborted and all(e["drained"] is False for e in aborted)
        assert lane.shards == 2
        lane.retire_drains = True  # in-flight work finished; drain succeeds
        scaler.tick()
        downs = [e for e in scaler.events if e["action"] == "scale_down"]
        assert len(downs) == 1 and downs[0]["drained"] is True
        assert lane.shards == 1

    def test_in_flight_work_blocks_idle_counting(self):
        scaler, engine, clock = make_scaler(cooldown_s=0.0, scale_down_sustain=2)
        lane = engine.lanes[SPEC]
        lane.shards = 2
        lane.in_flight = 1  # queue empty but work outstanding
        for _ in range(5):
            scaler.tick()
            clock.advance(0.5)
        assert lane.shards == 2


class TestCrashLoopQuarantine:
    def test_crash_burst_quarantines_with_backoff(self):
        scaler, engine, clock = make_scaler()
        lane = engine.lanes[SPEC]
        clock.advance(20.0)
        lane.crash_times = [19.0, 19.5, 19.9]  # 3 crashes inside the window
        events = scaler.tick()
        assert [e["action"] for e in events] == ["quarantine"]
        assert events[0]["backoff_s"] == 2.0  # rung 0 = base
        assert lane.quarantined

    def test_old_crashes_outside_window_do_not_trip(self):
        scaler, engine, clock = make_scaler()
        lane = engine.lanes[SPEC]
        clock.advance(100.0)
        lane.crash_times = [1.0, 2.0, 3.0]
        assert scaler.tick() == []
        assert not lane.quarantined

    def test_backoff_doubles_per_rung_and_probe_recovers(self):
        scaler, engine, clock = make_scaler()
        lane = engine.lanes[SPEC]
        clock.advance(20.0)
        lane.crash_times = [19.0, 19.5, 19.9]
        scaler.tick()  # quarantine at rung 0, backoff 2s
        clock.advance(1.0)
        assert scaler.tick() == []  # still inside backoff
        assert lane.quarantined
        clock.advance(1.5)  # past quarantined_until
        events = scaler.tick()
        assert [e["action"] for e in events] == ["quarantine_clear"]
        assert not lane.quarantined
        # The probe crash-loops again: re-quarantine at the next rung.
        lane.crash_times += [clock.t + 0.1, clock.t + 0.2, clock.t + 0.3]
        clock.advance(0.5)
        events = scaler.tick()
        assert [e["action"] for e in events] == ["quarantine"]
        assert events[0]["backoff_s"] == 4.0  # rung 1 = base * 2
        # A healthy probe resets nothing but stops the spiral: clear and
        # stay clear while no fresh crashes arrive.
        clock.advance(4.5)
        assert [e["action"] for e in scaler.tick()] == ["quarantine_clear"]
        clock.advance(5.0)
        assert scaler.tick() == []
        assert not lane.quarantined

    def test_settled_crashes_do_not_retrip_after_clear(self):
        # The crash history that caused the quarantine must not re-trip
        # the breaker right after the probe clears it.
        scaler, engine, clock = make_scaler(crash_window_s=100.0)
        lane = engine.lanes[SPEC]
        clock.advance(20.0)
        lane.crash_times = [19.0, 19.5, 19.9]
        scaler.tick()
        clock.advance(2.5)
        assert [e["action"] for e in scaler.tick()] == ["quarantine_clear"]
        clock.advance(0.1)
        assert scaler.tick() == []  # old crashes are settled history
        assert not lane.quarantined

    def test_no_scaling_while_quarantined(self):
        scaler, engine, clock = make_scaler(cooldown_s=0.0)
        lane = engine.lanes[SPEC]
        clock.advance(20.0)
        lane.crash_times = [19.0, 19.5, 19.9]
        scaler.tick()
        lane.queue_depth = 60  # heavy pressure, but the lane is sick
        scaler.tick()
        assert lane.shards == 1
        assert ("add", SPEC) not in engine.calls


class TestBorrowing:
    SPECS = ("vit_s/quq/6", "vit_s/quq/4")

    def test_idle_lane_lends_to_hot_lane(self):
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(engine=engine)
        hot, idle = self.SPECS
        engine.lanes[hot].queue_depth = 60  # > borrow_pressure
        events = scaler.tick()
        borrows = [e for e in events if e["action"] == "borrow"]
        assert len(borrows) == 1
        assert borrows[0]["spec"] == hot and borrows[0]["lender"] == idle
        assert engine.lanes[hot].shards == 3
        assert engine.lanes[idle].shards == 1

    def test_borrow_budget_bounds_loans(self):
        engine = FakeElasticEngine(specs=self.SPECS, shards=3)
        scaler, engine, clock = make_scaler(engine=engine, borrow_budget=1)
        hot, idle = self.SPECS
        engine.lanes[hot].queue_depth = 60
        for _ in range(4):
            scaler.tick()
            clock.advance(0.2)
        borrows = [e for e in scaler.events if e["action"] == "borrow"]
        assert len(borrows) == 1  # lent exactly one despite sustained heat
        assert len(scaler.snapshot()["active_loans"]) == 1

    def test_loan_returns_on_pressure_reversal(self):
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(engine=engine)
        hot, idle = self.SPECS
        engine.lanes[hot].queue_depth = 60
        scaler.tick()
        assert engine.lanes[hot].shards == 3
        engine.lanes[hot].queue_depth = 0  # crowd over
        clock.advance(1.0)
        events = scaler.tick()
        returns = [e for e in events if e["action"] == "borrow_return"]
        assert len(returns) == 1 and returns[0]["lender"] == idle
        assert engine.lanes[hot].shards == 2
        assert engine.lanes[idle].shards == 2
        assert scaler.snapshot()["active_loans"] == []

    def test_loan_held_through_momentary_dip(self):
        # A borrower whose queue briefly dips must keep the loan for at
        # least one cooldown — otherwise the pair flaps borrow/return on
        # every queue oscillation inside the flash crowd.
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(engine=engine, cooldown_s=1.0)
        hot, idle = self.SPECS
        engine.lanes[hot].queue_depth = 60
        scaler.tick()
        assert engine.lanes[hot].shards == 3
        engine.lanes[hot].queue_depth = 0  # momentary dip
        clock.advance(0.2)  # inside the cooldown
        assert all(e["action"] != "borrow_return" for e in scaler.tick())
        assert engine.lanes[hot].shards == 3
        clock.advance(1.0)  # past it, still cool: now it returns
        returns = [e for e in scaler.tick() if e["action"] == "borrow_return"]
        assert len(returns) == 1

    def test_busy_lender_is_not_raided(self):
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(engine=engine)
        hot, other = self.SPECS
        engine.lanes[hot].queue_depth = 60
        engine.lanes[other].in_flight = 2  # busy: ineligible lender
        assert all(e["action"] != "borrow" for e in scaler.tick())
        assert engine.lanes[other].shards == 2

    def test_quarantined_lane_neither_borrows_nor_lends(self):
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(engine=engine)
        hot, idle = self.SPECS
        engine.lanes[hot].queue_depth = 60
        engine.lanes[idle].quarantined = True
        assert all(e["action"] != "borrow" for e in scaler.tick())

    def test_borrowed_shard_not_retired_as_surplus(self):
        # min_shards accounting must include the loan: the borrower keeps
        # its borrowed shard through an idle spell (the loan unwinds via
        # borrow_return instead, respawning the lender's shard).
        engine = FakeElasticEngine(specs=self.SPECS, shards=2)
        scaler, engine, clock = make_scaler(
            engine=engine, min_shards=2, max_shards=4, cooldown_s=0.0,
        )
        hot, idle = self.SPECS
        engine.lanes[idle].shards = 3  # spare capacity above the floor
        engine.lanes[hot].queue_depth = 60
        scaler.tick()
        assert engine.lanes[hot].shards == 3
        engine.lanes[hot].queue_depth = 0
        # The first idle tick returns the loan; afterwards both lanes sit
        # at the floor and nothing is retired below it.
        for _ in range(6):
            scaler.tick()
            clock.advance(0.5)
        assert engine.lanes[hot].shards == 2
        assert engine.lanes[idle].shards == 2


class TestSnapshot:
    def test_snapshot_summarizes_ledger(self):
        scaler, engine, clock = make_scaler()
        engine.lanes[SPEC].queue_depth = 60
        scaler.tick()
        clock.advance(0.1)
        scaler.tick()
        snap = scaler.snapshot()
        assert snap["event_counts"] == {"scale_up": 1}
        assert snap["lanes"][SPEC]["borrowed"] == 0
        assert snap["events"][0]["action"] == "scale_up"
