"""Regenerate ``hw_golden.npz``, the QUA datapath golden-output fixture.

Run from the repo root with the *current* (trusted) implementation::

    PYTHONPATH=src python tests/data/make_hw_golden.py

``tests/test_hw_faults.py::TestGoldenRegression`` replays the same inputs
through the live code and asserts bit-exact agreement, so any refactor of
the encode/decode/GEMM/requantize path that changes behaviour with fault
injection *disabled* is caught.  The fixture stores only integer arrays
and float64 values produced by exact arithmetic, so it is stable across
platforms.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.hw import QUA, encode_tensor
from repro.quant import progressive_relaxation


def build() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(20240805)
    x = rng.standard_t(df=3, size=(16, 32)) * 0.3
    w = rng.normal(size=(32, 24)) * 0.05
    arrays: dict[str, np.ndarray] = {"x": x, "w": w}
    for bits in (6, 8):
        ex = encode_tensor(x, bits)
        ew = encode_tensor(w, bits)
        qua = QUA()
        acc = qua.integer_gemm(ex, ew)
        out_values = acc.astype(np.float64) * ex.base_delta * ew.base_delta
        out_params = progressive_relaxation(out_values, bits)
        qt = qua.requantize(acc, ex.base_delta * ew.base_delta, out_params)
        eo = qua.gemm_requantized(ex, ew, out_params)
        tag = f"b{bits}"
        arrays.update(
            {
                f"{tag}:x_qubs": ex.qubs,
                f"{tag}:x_regs": np.array(
                    [ex.registers.fine.pack(), ex.registers.coarse.pack()],
                    dtype=np.uint8,
                ),
                f"{tag}:x_base": np.float64(ex.base_delta),
                f"{tag}:w_qubs": ew.qubs,
                f"{tag}:w_regs": np.array(
                    [ew.registers.fine.pack(), ew.registers.coarse.pack()],
                    dtype=np.uint8,
                ),
                f"{tag}:w_base": np.float64(ew.base_delta),
                f"{tag}:acc": acc,
                f"{tag}:gemm": qua.gemm(ex, ew),
                f"{tag}:x_float": ex.to_float(),
                f"{tag}:rq_codes": qt.codes,
                f"{tag}:rq_subranges": qt.subranges,
                f"{tag}:out_qubs": eo.qubs,
                f"{tag}:out_regs": np.array(
                    [eo.registers.fine.pack(), eo.registers.coarse.pack()],
                    dtype=np.uint8,
                ),
                f"{tag}:out_base": np.float64(eo.base_delta),
                f"{tag}:softmax": qua.sfu(ex, "softmax"),
            }
        )
    return arrays


if __name__ == "__main__":
    target = Path(__file__).parent / "hw_golden.npz"
    np.savez_compressed(target, **build())
    print(f"wrote {target}")
