"""Shared fixtures for the test suite.

Models used in tests are deliberately tiny (and trained for only a couple
of epochs where training matters) so the whole suite stays fast on one CPU
core; the full-size mini-zoo models are exercised by the benchmark
harness, not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_splits
from repro.models.configs import ModelConfig, SwinConfig
from repro.models.vit import build_vit
from repro.models.swin import build_swin
from repro.training import TrainConfig, train_classifier

TINY_VIT = ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)
TINY_DEIT = ModelConfig("tiny_deit", "deit", 16, 4, 3, 10, 32, 2, 2, distilled=True)
TINY_SWIN = SwinConfig("tiny_swin", 16, 2, 3, 10, 16, (1, 1), (2, 2), 4)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_vit():
    return build_vit(TINY_VIT, seed=0)


@pytest.fixture
def tiny_deit():
    return build_vit(TINY_DEIT, seed=0)


@pytest.fixture
def tiny_swin():
    return build_swin(TINY_SWIN, seed=0)


@pytest.fixture(scope="session")
def tiny_data():
    """Small train/val splits at the tiny models' 16x16 resolution."""
    return make_splits(train_count=256, val_count=128, size=16, seed=0)


@pytest.fixture(scope="session")
def tiny_trained(tiny_data):
    """A tiny ViT trained for two epochs — enough to be better than chance."""
    train_set, _ = tiny_data
    model = build_vit(TINY_VIT, seed=0)
    train_classifier(model, train_set, TrainConfig(epochs=2, batch_size=64, lr=2e-3))
    return model


@pytest.fixture(scope="session")
def calib_images(tiny_data):
    train_set, _ = tiny_data
    return train_set.images[:32]
