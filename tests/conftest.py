"""Shared fixtures for the test suite.

Models used in tests are deliberately tiny (and trained for only a couple
of epochs where training matters) so the whole suite stays fast on one CPU
core; the full-size mini-zoo models are exercised by the benchmark
harness, not here.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.data import make_splits
from repro.models.configs import ModelConfig, SwinConfig
from repro.models.vit import build_vit
from repro.models.swin import build_swin
from repro.training import TrainConfig, train_classifier

#: Per-test wall-clock ceiling (seconds).  Generous — a healthy test
#: finishes in well under a minute — so trips mean a real hang, which the
#: resilience suite's threaded scenarios could otherwise turn into a
#: stuck CI job.  Override via the env var or a ``@pytest.mark.timeout``.
DEFAULT_TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "180"))


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="run tests marked slow (skipped by default to keep tier-1 fast)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``slow`` tests unless opted in (``--run-slow`` or ``-m slow``)."""
    if config.getoption("--run-slow") or "slow" in (config.option.markexpr or ""):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --run-slow (or -m slow)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _timeout_guard(request):
    """Fail (rather than hang) any test that wedges: a deadlocked worker
    thread must show up as a test failure, not a stuck suite.

    Uses SIGALRM, so the guard is a no-op on platforms without it or when
    the test runs off the main thread.
    """
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT_S
    if seconds <= 0:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {seconds}s timeout guard"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


TINY_VIT = ModelConfig("tiny_vit", "vit", 16, 4, 3, 10, 32, 2, 2)
TINY_DEIT = ModelConfig("tiny_deit", "deit", 16, 4, 3, 10, 32, 2, 2, distilled=True)
TINY_SWIN = SwinConfig("tiny_swin", 16, 2, 3, 10, 16, (1, 1), (2, 2), 4)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_vit():
    return build_vit(TINY_VIT, seed=0)


@pytest.fixture
def tiny_deit():
    return build_vit(TINY_DEIT, seed=0)


@pytest.fixture
def tiny_swin():
    return build_swin(TINY_SWIN, seed=0)


@pytest.fixture(scope="session")
def tiny_data():
    """Small train/val splits at the tiny models' 16x16 resolution."""
    return make_splits(train_count=256, val_count=128, size=16, seed=0)


@pytest.fixture(scope="session")
def tiny_trained(tiny_data):
    """A tiny ViT trained for two epochs — enough to be better than chance."""
    train_set, _ = tiny_data
    model = build_vit(TINY_VIT, seed=0)
    train_classifier(model, train_set, TrainConfig(epochs=2, batch_size=64, lr=2e-3))
    return model


@pytest.fixture(scope="session")
def calib_images(tiny_data):
    train_set, _ = tiny_data
    return train_set.images[:32]
