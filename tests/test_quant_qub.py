"""Tests for the QUB codec (Eq. 6-7) and FC registers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erf

from repro.quant import (
    FCRegisters,
    MAX_SHIFT,
    QUQParams,
    QUQQuantizer,
    SUBRANGE_IDS,
    SpaceRegister,
    Subrange,
    SubrangeSpec,
    decode,
    encode,
    legalize_for_hardware,
    quantize_with_params,
)


class TestSpaceRegister:
    @given(st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, byte):
        # Bytes with both the both-sides and negative-reserved flags set
        # encode a layout pack() can never produce: strict unpack rejects
        # them.  Every other byte round-trips exactly.
        if byte >> 7 & 1 and byte >> 6 & 1:
            with pytest.raises(ValueError, match="inconsistent register byte"):
                SpaceRegister.unpack(byte)
            return
        reg = SpaceRegister.unpack(byte)
        assert reg.pack() == byte
        assert SpaceRegister.unpack(reg.pack()) == reg

    def test_bit_layout(self):
        reg = SpaceRegister(both_sides=True, negative_reserved=False, shift_neg=5, shift_pos=2)
        byte = reg.pack()
        assert byte >> 7 == 1
        assert (byte >> 3) & 0b111 == 5
        assert byte & 0b111 == 2

    def test_both_sides_with_negative_reserved_rejected(self):
        with pytest.raises(ValueError, match="inconsistent register"):
            SpaceRegister(both_sides=True, negative_reserved=True, shift_neg=0, shift_pos=0)

    def test_shift_field_width_enforced(self):
        with pytest.raises(ValueError):
            SpaceRegister(False, False, 8, 0)

    def test_unpack_range_check(self):
        with pytest.raises(ValueError):
            SpaceRegister.unpack(256)
        with pytest.raises(ValueError):
            SpaceRegister.unpack(-1)


class TestFCRegistersPackUnpack:
    def test_roundtrip(self, rng):
        q = QUQQuantizer(6).fit(rng.standard_t(df=3, size=2000))
        regs = FCRegisters.from_params(legalize_for_hardware(q.params))
        fine_byte, coarse_byte = regs.pack()
        assert FCRegisters.unpack(fine_byte, coarse_byte) == regs

    def test_unpack_rejects_inconsistent_byte(self):
        with pytest.raises(ValueError, match="inconsistent register byte"):
            FCRegisters.unpack(0b1100_0000, 0)
        with pytest.raises(ValueError, match="inconsistent register byte"):
            FCRegisters.unpack(0, 0b1100_0000)

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            FCRegisters.unpack(300, 0)


def _roundtrip_case(x, bits):
    q = QUQQuantizer(bits).fit(x)
    q.params = legalize_for_hardware(q.params)
    qt = q.quantize(x)
    qubs, registers = encode(qt)
    d, n_sh = decode(qubs, registers, bits)
    recon = d.astype(np.float64) * (2.0**n_sh) * q.params.base_delta
    return qt, qubs, d, n_sh, recon


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_two_sided_exact(self, rng, bits):
        x = rng.standard_t(df=3, size=4000) * 0.2
        qt, qubs, d, n_sh, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_nonnegative_exact(self, rng, bits):
        x = rng.dirichlet(np.ones(64), size=50).reshape(-1)
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_gelu_mode_c_exact(self, rng, bits):
        g = rng.normal(size=4000)
        x = g * 0.5 * (1 + erf(g / np.sqrt(2)))
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    def test_nonpositive_zero_clamp_documented(self, rng):
        # One-sided negative space has no zero pattern: exact zeros decode
        # one step below.  Everything else must round-trip exactly.
        x = -np.abs(rng.standard_t(df=3, size=2000))
        x[:10] = 0.0
        qt, _, _, _, recon = _roundtrip_case(x, 6)
        ref = qt.dequantize()
        diff = np.abs(recon - ref)
        assert (diff[ref != 0] <= np.abs(ref[ref != 0]) * 1e-6 + 1e-9).all()
        assert diff.max() <= qt.params.base_delta * (2.0**MAX_SHIFT) + 1e-9

    @given(st.integers(0, 500), st.sampled_from([4, 6, 8]))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, seed, bits):
        rng = np.random.default_rng(seed)
        x = rng.standard_t(df=3, size=1000) * rng.uniform(1e-3, 100)
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)


def _random_legal_params(rng, bits: int, pattern: str) -> QUQParams:
    """Randomized QUQParams covering every mode's level layout.

    Deltas are ``base * 2^k`` with ``k`` possibly beyond ``MAX_SHIFT`` so
    the caller's ``legalize_for_hardware`` pass is exercised too.
    """
    quarter = 2 ** (bits - 2)
    half = 2 ** (bits - 1)
    base = float(2.0 ** int(rng.integers(-12, 3)))

    def spec(levels: int) -> SubrangeSpec:
        return SubrangeSpec(base * 2.0 ** int(rng.integers(0, 10)), levels)

    layouts = {
        # Mode A: all four subranges.
        "A": dict(f_neg=spec(quarter), f_pos=spec(quarter),
                  c_neg=spec(quarter), c_pos=spec(quarter)),
        # Mode B: one-sided data — the decode branch for the other sign
        # is empty (positive case) or the zero code is clamped (negative).
        "B+": dict(f_neg=None, f_pos=spec(half), c_neg=None, c_pos=spec(half)),
        "B-": dict(f_neg=spec(half), f_pos=None, c_neg=spec(half), c_pos=None),
        # Mode C: one coarse side merged away, its space one-sided.
        "C+": dict(f_neg=spec(quarter), f_pos=spec(quarter),
                   c_neg=None, c_pos=spec(half)),
        "C-": dict(f_neg=spec(quarter), f_pos=spec(quarter),
                   c_neg=spec(half), c_pos=None),
        # Mode D: a single subrange per space, on opposite sides.
        "D+": dict(f_neg=None, f_pos=spec(half), c_neg=spec(half), c_pos=None),
        "D-": dict(f_neg=spec(half), f_pos=None, c_neg=None, c_pos=spec(half)),
    }
    return QUQParams(bits, **layouts[pattern])


class TestEncodeDecodeProperty:
    """Satellite: encode -> decode is bit-exact for *any* legal registers,
    not just the layouts the fitting pipeline happens to produce."""

    @given(
        st.integers(0, 400),
        st.sampled_from([4, 6, 8]),
        st.sampled_from(["A", "B+", "B-", "C+", "C-", "D+", "D-"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_bit_exact_roundtrip(self, seed, bits, pattern):
        rng = np.random.default_rng([seed, bits])
        params = legalize_for_hardware(_random_legal_params(rng, bits, pattern))
        for subrange, _ in params.active():
            assert params.shift(subrange) <= MAX_SHIFT
        # Sampling representable points makes the expected integers exact.
        x = rng.choice(params.quantization_points(), size=256)
        qt = quantize_with_params(x, params)
        qubs, registers = encode(qt)
        d, n_sh = decode(qubs, registers, bits)

        shifts = np.zeros(x.shape, dtype=np.int64)
        for subrange, _ in params.active():
            mask = qt.subranges == SUBRANGE_IDS[subrange]
            shifts[mask] = params.shift(subrange)
        expected = qt.codes.astype(np.int64) << shifts
        got = d.astype(np.int64) << n_sh

        # The documented deviation: a one-sided negative space cannot
        # encode zero, so those codes clamp to -1 (one step below).
        clamped = np.zeros(x.shape, dtype=bool)
        fine = (qt.subranges == SUBRANGE_IDS[Subrange.F_NEG]) | (
            qt.subranges == SUBRANGE_IDS[Subrange.F_POS]
        )
        for mask, register in ((fine, registers.fine), (~fine, registers.coarse)):
            if register.negative_reserved:
                clamped |= mask & (qt.codes == 0)
        assert np.array_equal(got[~clamped], expected[~clamped])
        assert np.array_equal(
            got[clamped], -(np.int64(1) << n_sh[clamped])
        )  # d == -1 at the register's negative shift


class TestEncodeBatch:
    def test_matches_per_tensor_encode(self, rng):
        from repro.quant.qub import encode_batch

        q = QUQQuantizer(6).fit(rng.standard_t(df=3, size=4000))
        q.params = legalize_for_hardware(q.params)
        tensors = [
            q.quantize(rng.standard_t(df=3, size=(4, 7, 9)))
            for _ in range(5)
        ]
        batched, registers = encode_batch(tensors)
        assert registers == FCRegisters.from_params(q.params)
        for qt, qubs in zip(tensors, batched):
            single, single_regs = encode(qt)
            assert single_regs == registers
            assert qubs.shape == qt.codes.shape
            assert qubs.dtype == single.dtype
            assert np.array_equal(qubs, single)

    def test_one_sided_negative_clamp_matches(self, rng):
        from repro.quant.qub import encode_batch

        q = QUQQuantizer(6).fit(-np.abs(rng.standard_t(df=3, size=3000)))
        q.params = legalize_for_hardware(q.params)
        samples = [-np.abs(rng.standard_t(df=3, size=500)) for _ in range(3)]
        samples[1][:20] = 0.0  # exercise the zero-to-(-1) clamp
        tensors = [q.quantize(x) for x in samples]
        batched, _ = encode_batch(tensors)
        for qt, qubs in zip(tensors, batched):
            assert np.array_equal(qubs, encode(qt)[0])

    def test_mixed_params_rejected(self, rng):
        from repro.quant.qub import encode_batch

        x = rng.standard_t(df=3, size=1000)
        qa = QUQQuantizer(6).fit(x)
        qb = QUQQuantizer(6).fit(x * 3.7)
        with pytest.raises(ValueError, match="shared parameter set"):
            encode_batch([qa.quantize(x), qb.quantize(x)])

    def test_empty_rejected_with_typed_error(self):
        from repro.quant.qub import EmptyBatchError, encode_batch

        with pytest.raises(EmptyBatchError, match="at least one"):
            encode_batch([])
        # Callers that only know ValueError still catch it.
        assert issubclass(EmptyBatchError, ValueError)

    def test_zero_size_members_accepted(self, rng):
        """Regression: zero-size tensors in a batch must encode, not crash."""
        from repro.quant.qub import encode_batch

        q = QUQQuantizer(6).fit(rng.standard_t(df=3, size=2000))
        q.params = legalize_for_hardware(q.params)
        tensors = [
            q.quantize(np.empty((0,))),
            q.quantize(rng.standard_t(df=3, size=(3, 5))),
            q.quantize(np.empty((2, 0, 4))),
        ]
        batched, registers = encode_batch(tensors)
        assert registers == FCRegisters.from_params(q.params)
        assert batched[0].shape == (0,)
        assert batched[2].shape == (2, 0, 4)
        assert np.array_equal(batched[1], encode(tensors[1])[0])

    def test_all_zero_size_batch(self, rng):
        from repro.quant.qub import encode_batch

        q = QUQQuantizer(4).fit(rng.normal(size=1000))
        q.params = legalize_for_hardware(q.params)
        batched, _ = encode_batch([q.quantize(np.empty((0, 7)))])
        assert batched[0].shape == (0, 7)

    def test_reference_variant_same_errors(self, monkeypatch, rng):
        """REPRO_KERNELS=reference preserves the typed error contract."""
        from repro.quant.qub import EmptyBatchError, encode_batch

        monkeypatch.setenv("REPRO_KERNELS", "reference")
        with pytest.raises(EmptyBatchError):
            encode_batch([])
        q = QUQQuantizer(6).fit(rng.normal(size=1000))
        q.params = legalize_for_hardware(q.params)
        batched, _ = encode_batch([q.quantize(np.empty((0,)))])
        assert batched[0].shape == (0,)


class TestDecodedOperandWidth:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_d_fits_signed_multiplier(self, rng, bits):
        """Section 4.1's claim: a b-bit signed multiplier handles any mode."""
        x = rng.standard_t(df=3, size=3000)
        _, _, d, n_sh, _ = _roundtrip_case(x, bits)
        assert d.min() >= -(2 ** (bits - 1))
        assert d.max() <= 2 ** (bits - 1) - 1
        assert n_sh.min() >= 0 and n_sh.max() <= MAX_SHIFT

    def test_qub_dtype_single_byte(self, rng):
        x = rng.normal(size=100)
        q = QUQQuantizer(8).fit(x)
        qubs, _ = encode(q.quantize(x))
        assert qubs.dtype == np.uint8


class TestLegalization:
    def test_pathological_shifts_reduced(self, rng):
        x = np.concatenate([rng.normal(size=10000) * 1e-5, rng.normal(size=5) * 10])
        q = QUQQuantizer(8).fit(x)
        legal = legalize_for_hardware(q.params)
        for subrange, _ in legal.active():
            assert legal.shift(subrange) <= MAX_SHIFT

    def test_already_legal_untouched(self, rng):
        q = QUQQuantizer(6).fit(rng.normal(size=1000))
        legal = legalize_for_hardware(q.params)
        assert legal == q.params

    def test_legalized_params_still_valid(self, rng):
        x = np.concatenate([rng.normal(size=10000) * 1e-5, rng.normal(size=5) * 10])
        legal = legalize_for_hardware(QUQQuantizer(6).fit(x).params)
        assert sum(s.levels for _, s in legal.active()) == 64


class TestFCRegistersFromParams:
    def test_mode_a_both_sides(self, rng):
        q = QUQQuantizer(6).fit(rng.standard_t(df=2, size=20000))
        regs = FCRegisters.from_params(q.params)
        assert regs.fine.both_sides
        assert regs.coarse.both_sides

    def test_mode_b_positive_reserved(self, rng):
        q = QUQQuantizer(6).fit(np.abs(rng.standard_t(df=3, size=5000)))
        regs = FCRegisters.from_params(q.params)
        assert not regs.fine.both_sides
        assert not regs.fine.negative_reserved
