"""Tests for the QUB codec (Eq. 6-7) and FC registers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erf

from repro.quant import (
    FCRegisters,
    MAX_SHIFT,
    QUQQuantizer,
    SpaceRegister,
    decode,
    encode,
    legalize_for_hardware,
)


class TestSpaceRegister:
    @given(st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, byte):
        reg = SpaceRegister.unpack(byte)
        repacked = SpaceRegister.unpack(reg.pack())
        assert reg == repacked

    def test_bit_layout(self):
        reg = SpaceRegister(both_sides=True, negative_reserved=False, shift_neg=5, shift_pos=2)
        byte = reg.pack()
        assert byte >> 7 == 1
        assert (byte >> 3) & 0b111 == 5
        assert byte & 0b111 == 2

    def test_negative_reserved_suppressed_when_both_sides(self):
        reg = SpaceRegister(both_sides=True, negative_reserved=True, shift_neg=0, shift_pos=0)
        assert (reg.pack() >> 6) & 1 == 0

    def test_shift_field_width_enforced(self):
        with pytest.raises(ValueError):
            SpaceRegister(False, False, 8, 0)

    def test_unpack_range_check(self):
        with pytest.raises(ValueError):
            SpaceRegister.unpack(256)


def _roundtrip_case(x, bits):
    q = QUQQuantizer(bits).fit(x)
    q.params = legalize_for_hardware(q.params)
    qt = q.quantize(x)
    qubs, registers = encode(qt)
    d, n_sh = decode(qubs, registers, bits)
    recon = d.astype(np.float64) * (2.0**n_sh) * q.params.base_delta
    return qt, qubs, d, n_sh, recon


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_two_sided_exact(self, rng, bits):
        x = rng.standard_t(df=3, size=4000) * 0.2
        qt, qubs, d, n_sh, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_nonnegative_exact(self, rng, bits):
        x = rng.dirichlet(np.ones(64), size=50).reshape(-1)
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_gelu_mode_c_exact(self, rng, bits):
        g = rng.normal(size=4000)
        x = g * 0.5 * (1 + erf(g / np.sqrt(2)))
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)

    def test_nonpositive_zero_clamp_documented(self, rng):
        # One-sided negative space has no zero pattern: exact zeros decode
        # one step below.  Everything else must round-trip exactly.
        x = -np.abs(rng.standard_t(df=3, size=2000))
        x[:10] = 0.0
        qt, _, _, _, recon = _roundtrip_case(x, 6)
        ref = qt.dequantize()
        diff = np.abs(recon - ref)
        assert (diff[ref != 0] <= np.abs(ref[ref != 0]) * 1e-6 + 1e-9).all()
        assert diff.max() <= qt.params.base_delta * (2.0**MAX_SHIFT) + 1e-9

    @given(st.integers(0, 500), st.sampled_from([4, 6, 8]))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, seed, bits):
        rng = np.random.default_rng(seed)
        x = rng.standard_t(df=3, size=1000) * rng.uniform(1e-3, 100)
        qt, _, _, _, recon = _roundtrip_case(x, bits)
        np.testing.assert_allclose(recon, qt.dequantize(), rtol=1e-6, atol=1e-9)


class TestDecodedOperandWidth:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_d_fits_signed_multiplier(self, rng, bits):
        """Section 4.1's claim: a b-bit signed multiplier handles any mode."""
        x = rng.standard_t(df=3, size=3000)
        _, _, d, n_sh, _ = _roundtrip_case(x, bits)
        assert d.min() >= -(2 ** (bits - 1))
        assert d.max() <= 2 ** (bits - 1) - 1
        assert n_sh.min() >= 0 and n_sh.max() <= MAX_SHIFT

    def test_qub_dtype_single_byte(self, rng):
        x = rng.normal(size=100)
        q = QUQQuantizer(8).fit(x)
        qubs, _ = encode(q.quantize(x))
        assert qubs.dtype == np.uint8


class TestLegalization:
    def test_pathological_shifts_reduced(self, rng):
        x = np.concatenate([rng.normal(size=10000) * 1e-5, rng.normal(size=5) * 10])
        q = QUQQuantizer(8).fit(x)
        legal = legalize_for_hardware(q.params)
        for subrange, _ in legal.active():
            assert legal.shift(subrange) <= MAX_SHIFT

    def test_already_legal_untouched(self, rng):
        q = QUQQuantizer(6).fit(rng.normal(size=1000))
        legal = legalize_for_hardware(q.params)
        assert legal == q.params

    def test_legalized_params_still_valid(self, rng):
        x = np.concatenate([rng.normal(size=10000) * 1e-5, rng.normal(size=5) * 10])
        legal = legalize_for_hardware(QUQQuantizer(6).fit(x).params)
        assert sum(s.levels for _, s in legal.active()) == 64


class TestFCRegistersFromParams:
    def test_mode_a_both_sides(self, rng):
        q = QUQQuantizer(6).fit(rng.standard_t(df=2, size=20000))
        regs = FCRegisters.from_params(q.params)
        assert regs.fine.both_sides
        assert regs.coarse.both_sides

    def test_mode_b_positive_reserved(self, rng):
        q = QUQQuantizer(6).fit(np.abs(rng.standard_t(df=3, size=5000)))
        regs = FCRegisters.from_params(q.params)
        assert not regs.fine.both_sides
        assert not regs.fine.negative_reserved
