"""Tests for Algorithms 1 and 2 (relaxation / progressive relaxation).

Property-based tests assert the paper's structural guarantees: Algorithm 1
never shrinks a scale factor and always produces an exact power-of-two
ratio; Algorithm 2's output always satisfies the Eq. (4) constraint, the
2^b encoding-space budget, and full coverage of the calibration range.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import Mode, PRAConfig, progressive_relaxation, relax_two_scale_factors

positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAlgorithm1:
    @given(positive_floats, positive_floats)
    @settings(max_examples=200, deadline=None)
    def test_never_shrinks_and_power_of_two_ratio(self, d1, d2):
        r1, r2 = relax_two_scale_factors(d1, d2)
        assert r1 >= d1 * (1 - 1e-9)
        assert r2 >= d2 * (1 - 1e-9)
        log_ratio = np.log2(r2 / r1)
        assert abs(log_ratio - round(log_ratio)) < 1e-6

    def test_exact_power_untouched(self):
        assert relax_two_scale_factors(1.0, 4.0) == (1.0, 4.0)

    def test_equal_inputs_untouched(self):
        assert relax_two_scale_factors(0.7, 0.7) == (0.7, 0.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            relax_two_scale_factors(0.0, 1.0)


@st.composite
def calibration_tensors(draw):
    """Random tensors spanning the distribution shapes seen in ViTs."""
    kind = draw(st.sampled_from(["gauss", "student", "onesided", "asymmetric"]))
    seed = draw(st.integers(0, 2**16))
    scale = draw(st.floats(min_value=1e-3, max_value=100.0))
    rng = np.random.default_rng(seed)
    if kind == "gauss":
        x = rng.normal(size=4000)
    elif kind == "student":
        x = rng.standard_t(df=2.5, size=4000)
    elif kind == "onesided":
        x = np.abs(rng.standard_t(df=3, size=4000))
    else:
        x = np.where(rng.random(4000) < 0.8, rng.normal(size=4000) * 0.05, rng.normal(size=4000))
    return (x * scale).astype(np.float32)


class TestAlgorithm2Properties:
    @given(calibration_tensors(), st.sampled_from([4, 6, 8]))
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, x, bits):
        params = progressive_relaxation(x, bits)
        # Encoding budget: active levels always total 2^b.
        assert sum(s.levels for _, s in params.active()) == 2**bits
        # Eq. (4): every delta is a power-of-two multiple of the base.
        base = params.base_delta
        for _, spec in params.active():
            log_ratio = np.log2(spec.delta / base)
            assert abs(log_ratio - round(log_ratio)) < 1e-5
        # Shifts are recoverable integers.
        for subrange, _ in params.active():
            assert params.shift(subrange) >= 0

    @given(calibration_tensors(), st.sampled_from([4, 6, 8]))
    @settings(max_examples=60, deadline=None)
    def test_no_clipping_of_calibration_range(self, x, bits):
        params = progressive_relaxation(x, bits)
        positives = x[x > 0]
        negatives = x[x < 0]
        # Coverage must reach the extremes (relaxation only grows scales);
        # allow one coarse step of rounding slack.
        if positives.size:
            slack = max(
                (s.delta for _, s in params.active()), default=0.0
            )
            assert params.max_positive() + slack >= positives.max() * 0.999
        if negatives.size:
            slack = max((s.delta for _, s in params.active()), default=0.0)
            assert params.max_negative_magnitude() + slack >= -negatives.min() * 0.999


class TestModeSelection:
    def test_long_tailed_symmetric_gives_mode_a(self, rng):
        x = rng.standard_t(df=2, size=20000)
        params = progressive_relaxation(x, 6)
        assert params.mode is Mode.A

    def test_nonnegative_gives_mode_b(self, rng):
        x = rng.dirichlet(np.ones(50), size=100).reshape(-1)
        params = progressive_relaxation(x, 6)
        assert params.mode is Mode.B
        assert params.f_neg is None and params.c_neg is None

    def test_nonpositive_gives_mode_b_negative(self, rng):
        x = -np.abs(rng.standard_t(df=3, size=5000))
        params = progressive_relaxation(x, 6)
        assert params.mode is Mode.B
        assert params.f_pos is None and params.c_pos is None

    def test_gelu_like_gives_mode_c(self, rng):
        from scipy.special import erf

        g = rng.normal(size=20000)
        x = g * 0.5 * (1 + erf(g / np.sqrt(2)))
        params = progressive_relaxation(x, 4)
        assert params.mode is Mode.C
        assert params.c_neg is None  # bounded negative side merged

    def test_mild_gaussian_gives_mode_d(self, rng):
        x = rng.normal(size=20000)
        params = progressive_relaxation(x, 4)
        assert params.mode is Mode.D

    def test_mode_d_is_near_uniform(self, rng):
        # Mode D per-side scales must cover each side in 2^(b-1) steps.
        x = rng.normal(size=20000)
        params = progressive_relaxation(x, 6)
        if params.mode is Mode.D:
            assert params.max_positive() >= x.max() * 0.999
            assert params.max_negative_magnitude() >= -x.min() * 0.999

    def test_all_zero_tensor(self):
        params = progressive_relaxation(np.zeros(100), 6)
        assert sum(s.levels for _, s in params.active()) == 64


class TestQuantileRecursion:
    def test_quantile_relaxes_until_acceptable(self, rng):
        # A distribution whose 0.99 quantile is too close to the max (tiny
        # coarse/fine ratio) but separates at lower quantiles.
        bulk = rng.normal(size=10000) * 0.01
        shoulder = rng.normal(size=400) * 1.0
        x = np.concatenate([bulk, shoulder])
        tight = PRAConfig(initial_quantile=0.999, acceptable_quantile=0.95)
        params = progressive_relaxation(x, 6, tight)
        assert sum(s.levels for _, s in params.active()) == 64

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PRAConfig(acceptable_ratio=0.5)
        with pytest.raises(ValueError):
            PRAConfig(initial_quantile=0.9, acceptable_quantile=0.95)
        with pytest.raises(ValueError):
            PRAConfig(quantile_step=0.0)
