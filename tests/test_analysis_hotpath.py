"""Tests for the hot-path latency harness (structure + attestation only).

Timing assertions live in ``benchmarks/bench_hotpath.py`` where noise is
tolerable; tier-1 only checks that the harness runs, reports the right
shape, and that the bit-exactness attestation holds.
"""

import json

import pytest

from repro.analysis import (
    HotpathConfig,
    format_hotpath_report,
    run_hotpath_bench,
)
from repro.models.vit import build_vit
from tests.conftest import TINY_VIT


def _tiny_factory(seed=0):
    # The test-suite-sized model, not TINY_HOTPATH_VIT: tier-1 cares about
    # correctness of the harness, not about representative timings.
    return build_vit(TINY_VIT, seed=seed)


@pytest.fixture(scope="module")
def report():
    config = HotpathConfig(
        methods=("fp32", "baseq", "quq"),
        measured_batches=3,
        warmup_batches=1,
        calib_count=8,
        batch_size=2,
    )
    return run_hotpath_bench(config, model_factory=_tiny_factory)


class TestHotpathReport:
    def test_attestation_bit_exact(self, report):
        assert report["attestation"]["bit_exact"] is True
        assert report["attestation"]["per_method"] == {
            "baseq": True, "quq": True, "kernel_registry": True,
        }
        for method in ("baseq", "quq"):
            assert report["methods"][method]["bit_exact"] is True
        # The kernel attestation comes from the registry harness, not a
        # hand-rolled check: the report must say so.
        assert report["kernels"]["parity"]["source"] == "kernel-registry"
        assert report["kernels"]["parity"]["failures"] == 0

    def test_structure_and_serializability(self, report):
        assert report["schema_version"] == 1
        assert set(report["methods"]) == {"fp32", "baseq", "quq"}
        assert "calibrate_ms" not in report["methods"]["fp32"]
        for method in ("baseq", "quq"):
            entry = report["methods"][method]
            assert entry["calibrate_ms"] > 0
            assert entry["first_batch_ms"] > 0
            for stage in ("steady", "steady_uncached"):
                assert entry[stage]["p50_ms"] > 0
                assert entry[stage]["p95_ms"] >= entry[stage]["p50_ms"]
                assert entry[stage]["batches"] == 3
            assert entry["cache_speedup"] > 0
            assert entry["weight_cache"]["entries"] > 0
        json.dumps(report)  # must round-trip to the BENCH_serve.json file

    def test_format_report_renders(self, report):
        text = format_hotpath_report(report)
        assert "quq" in text and "bit-exact" in text
        assert "PASS" in text


class TestHotpathConfig:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            HotpathConfig(methods=("int8",))

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="measured_batches"):
            HotpathConfig(measured_batches=0)
        with pytest.raises(ValueError, match="warmup_batches"):
            HotpathConfig(warmup_batches=-1)
        with pytest.raises(ValueError, match="coverage"):
            HotpathConfig(coverage="half")


class TestCliWiring:
    def test_perf_bench_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["perf-bench", "--tiny", "--methods", "fp32", "quq",
             "--batches", "5", "--output", ""]
        )
        assert args.tiny is True
        assert args.methods == ["fp32", "quq"]
        assert args.batches == 5
        assert args.batch_size == 2  # perf-bench's own default, not 32
        assert args.output == ""
