"""Cross-module integration tests: the paper's claims end to end (tiny scale)."""

import numpy as np
import pytest

from repro import quantize_model
from repro.autograd import Tensor, no_grad
from repro.hw import QUA, encode_tensor
from repro.models.swin import build_swin
from repro.quant import (
    PTQPipeline,
    QUQQuantizer,
    UniformQuantizer,
    mse,
    progressive_relaxation,
)
from repro.training import evaluate_top1, predict_logits
from tests.conftest import TINY_SWIN


class TestQuantizedAccuracyOrdering:
    """Shape of Tables 2/3 at tiny scale: QUQ >= BaseQ, less harm at 8 bits."""

    def test_quq_at_least_as_good_as_baseq_low_bit(
        self, tiny_trained, calib_images, tiny_data
    ):
        _, val_set = tiny_data
        val = val_set.subset(96, seed=1)
        accs = {}
        for method in ("baseq", "quq"):
            pipeline = quantize_model(
                tiny_trained, calib_images, method=method, bits=4, coverage="full"
            )
            accs[method] = evaluate_top1(tiny_trained, val)
            pipeline.detach()
        assert accs["quq"] >= accs["baseq"] - 4.0

    def test_eight_bit_nearly_lossless(self, tiny_trained, calib_images, tiny_data):
        _, val_set = tiny_data
        val = val_set.subset(96, seed=1)
        reference = evaluate_top1(tiny_trained, val)
        pipeline = quantize_model(
            tiny_trained, calib_images, method="quq", bits=8, coverage="full"
        )
        quantized = evaluate_top1(tiny_trained, val)
        pipeline.detach()
        assert quantized >= reference - 5.0

    def test_partial_no_worse_than_full(self, tiny_trained, calib_images, tiny_data):
        _, val_set = tiny_data
        val = val_set.subset(96, seed=1)
        accs = {}
        for coverage in ("partial", "full"):
            pipeline = quantize_model(
                tiny_trained, calib_images, method="baseq", bits=4, coverage=coverage
            )
            accs[coverage] = evaluate_top1(tiny_trained, val)
            pipeline.detach()
        assert accs["partial"] >= accs["full"] - 4.0


class TestSwinQuantization:
    def test_full_pipeline_on_swin(self):
        rng = np.random.default_rng(0)
        model = build_swin(TINY_SWIN, seed=0)
        images = rng.normal(size=(8, 16, 16, 3)).astype(np.float32) * 0.5
        pipeline = PTQPipeline(model, method="quq", bits=8, coverage="full")
        pipeline.calibrate(images)
        with no_grad():
            out = model(Tensor(images))
        assert out.shape == (8, 10)
        assert np.isfinite(out.data).all()
        pipeline.detach()


class TestFakeQuantVsHardwarePath:
    def test_linear_layer_agrees_with_qua(self, tiny_trained, calib_images):
        """The fake-quantized Linear and the integer QUA GEMM must agree
        when driven with the same QUQ parameters."""
        layer = tiny_trained.blocks[0].attn.qkv
        x = calib_images[:4]
        with no_grad():
            tokens = tiny_trained.patch_embed(Tensor(x))
        activations = tokens.data.reshape(-1, tokens.shape[-1]).astype(np.float64)
        weights = layer.weight.data.astype(np.float64)

        x_params = progressive_relaxation(activations, 8)
        w_params = progressive_relaxation(weights, 8)
        ex = encode_tensor(activations, 8, params=x_params)
        ew = encode_tensor(weights, 8, params=w_params)
        hw_out = QUA().gemm(ex, ew)
        ref_out = ex.to_float() @ ew.to_float()
        np.testing.assert_allclose(hw_out, ref_out, rtol=1e-10)

    def test_uniform_is_special_case_of_quq(self, rng):
        """The paper's Section 3.2 claim, checked numerically: with matched
        per-side scales, Mode D QUQ reproduces symmetric uniform points."""
        x = rng.normal(size=5000).astype(np.float64)
        uni = UniformQuantizer(6).fit(x)
        quq = QUQQuantizer(6).fit(x)
        if quq.params.mode.value == "D":
            err_quq = mse(x, quq.fake_quantize(x))
            err_uni = mse(x, uni.fake_quantize(x))
            assert err_quq <= err_uni * 1.02


class TestLogitsConsistency:
    def test_quantized_logits_close_at_8bit(self, tiny_trained, calib_images, tiny_data):
        _, val_set = tiny_data
        images = val_set.images[:16]
        reference = predict_logits(tiny_trained, images)
        pipeline = quantize_model(
            tiny_trained, calib_images, method="quq", bits=8, coverage="full",
            hessian=False,
        )
        quantized = predict_logits(tiny_trained, images)
        pipeline.detach()
        agreement = np.mean(reference.argmax(-1) == quantized.argmax(-1))
        assert agreement >= 0.8
