"""Tests for the baseline quantizers (BiScaled-FxP, FQ-ViT, PTQ4ViT)."""

import numpy as np
import pytest

from repro.quant import (
    BiScaledQuantizer,
    Log2Quantizer,
    TwinUniformQuantizer,
    UniformQuantizer,
    mse,
)


class TestBiScaled:
    def test_beats_uniform_on_long_tails(self, rng):
        x = rng.standard_t(df=2, size=20000)
        bi = BiScaledQuantizer(6).fit(x)
        uni = UniformQuantizer(6).fit(x)
        assert mse(x, bi.fake_quantize(x)) < mse(x, uni.fake_quantize(x))

    def test_threshold_between_scales(self, rng):
        bi = BiScaledQuantizer(6).fit(rng.standard_t(df=3, size=5000))
        assert bi.delta_bulk <= bi.delta_outlier
        assert bi.threshold > 0

    def test_outliers_not_clipped_to_bulk_range(self, rng):
        x = np.concatenate([rng.normal(size=5000) * 0.01, [5.0, -5.0]])
        bi = BiScaledQuantizer(8).fit(x)
        out = bi.fake_quantize(x)
        assert out[-2] > 4.0 and out[-1] < -4.0

    def test_index_table_overhead_reported(self, rng):
        bi = BiScaledQuantizer(6).fit(rng.standard_t(df=2, size=5000))
        assert bi.bits_per_element() > 6.0

    def test_all_zero_input(self):
        bi = BiScaledQuantizer(6).fit(np.zeros(100))
        np.testing.assert_array_equal(bi.fake_quantize(np.zeros(5)), np.zeros(5))

    def test_scaled_copy(self, rng):
        bi = BiScaledQuantizer(6).fit(rng.normal(size=1000))
        s = bi.scaled(2.0)
        assert s.delta_bulk == pytest.approx(2 * bi.delta_bulk)
        assert s.threshold == pytest.approx(2 * bi.threshold)


class TestLog2:
    def test_powers_of_two_exact(self):
        q = Log2Quantizer(4).fit(np.array([0.5, 0.25, 1.0]))
        np.testing.assert_allclose(
            q.fake_quantize(np.array([0.5, 0.25, 1.0])), [0.5, 0.25, 1.0]
        )

    def test_zero_maps_to_zero(self):
        q = Log2Quantizer(4).fit(np.array([0.0, 0.5]))
        assert q.fake_quantize(np.array([0.0]))[0] == 0.0

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError):
            Log2Quantizer(4).fit(np.array([-0.1]))

    def test_fine_near_zero_coarse_near_one(self):
        # Log2 resolution is relative: small probabilities keep small
        # relative error, which is the attention-map-friendly property.
        q = Log2Quantizer(6).fit(np.array([0.5]))
        small = np.array([0.001, 0.0011])
        out = q.fake_quantize(small)
        assert np.abs(out - small).max() / small.max() < 0.5

    def test_good_on_softmax_distribution(self, rng):
        p = rng.dirichlet(np.ones(100), size=50).reshape(-1)
        q = Log2Quantizer(4).fit(p)
        uni = UniformQuantizer(4).fit(p)
        assert mse(p, q.fake_quantize(p)) < mse(p, uni.fake_quantize(p))


class TestTwinUniform:
    def test_sign_split_handles_gelu(self, rng):
        from scipy.special import erf

        g = rng.normal(size=20000)
        x = g * 0.5 * (1 + erf(g / np.sqrt(2)))
        twin = TwinUniformQuantizer(6, split="sign").fit(x)
        uni = UniformQuantizer(6).fit(x)
        assert mse(x, twin.fake_quantize(x)) < mse(x, uni.fake_quantize(x))

    def test_magnitude_split_handles_softmax(self, rng):
        p = rng.dirichlet(np.ones(64), size=100).reshape(-1)
        twin = TwinUniformQuantizer(6, split="magnitude").fit(p)
        uni = UniformQuantizer(6).fit(p)
        assert mse(p, twin.fake_quantize(p)) < mse(p, uni.fake_quantize(p))

    def test_power_of_two_scale_relationship(self, rng):
        twin = TwinUniformQuantizer(6, split="sign").fit(rng.standard_t(df=3, size=5000))
        ratio = np.log2(twin.delta_large / twin.delta_small)
        assert abs(ratio - round(ratio)) < 1e-9

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            TwinUniformQuantizer(6, split="diagonal")

    def test_scaled_copy(self, rng):
        twin = TwinUniformQuantizer(6).fit(rng.normal(size=1000))
        s = twin.scaled(0.5)
        assert s.delta_small == pytest.approx(0.5 * twin.delta_small)


class TestMetrics:
    def test_mse_zero_for_identical(self, rng):
        x = rng.normal(size=100)
        assert mse(x, x) == 0.0

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_sqnr_increases_with_bits(self, rng):
        from repro.quant import sqnr_db

        x = rng.normal(size=5000)
        low = sqnr_db(x, UniformQuantizer(4).fit(x).fake_quantize(x))
        high = sqnr_db(x, UniformQuantizer(8).fit(x).fake_quantize(x))
        assert high > low

    def test_cosine_similarity_bounds(self, rng):
        from repro.quant import cosine_similarity

        x = rng.normal(size=100)
        assert cosine_similarity(x, x) == pytest.approx(1.0)
        assert cosine_similarity(x, -x) == pytest.approx(-1.0)
