"""Tests for the ViT/DeiT models and the config registry."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import MINI_CONFIGS, MINI_FOR_PAPER, PAPER_CONFIGS, get_config
from repro.models.configs import ModelConfig
from repro.models.vit import build_vit
from tests.conftest import TINY_DEIT, TINY_VIT


class TestConfigs:
    def test_registry_lookup(self):
        assert get_config("vit_mini_s").embed_dim == 64
        assert get_config("vit_l").depth == 24

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            get_config("resnet50")

    def test_num_tokens_accounts_for_special_tokens(self):
        vit = get_config("vit_s")
        deit = get_config("deit_s")
        assert vit.num_tokens == 197  # 14*14 + cls
        assert deit.num_tokens == 198  # + distillation token

    def test_every_paper_model_has_a_mini_counterpart(self):
        for paper_name, mini_name in MINI_FOR_PAPER.items():
            paper = PAPER_CONFIGS[paper_name]
            mini = MINI_CONFIGS[mini_name]
            assert mini.family == paper.family

    def test_small_vs_large_ordering_preserved(self):
        assert MINI_CONFIGS["vit_mini_l"].embed_dim > MINI_CONFIGS["vit_mini_s"].embed_dim
        assert MINI_CONFIGS["deit_mini_b"].embed_dim > MINI_CONFIGS["deit_mini_s"].embed_dim


class TestVisionTransformer:
    def test_forward_shape(self, tiny_vit, rng):
        images = rng.normal(size=(3, 16, 16, 3)).astype(np.float32)
        assert tiny_vit(Tensor(images)).shape == (3, 10)

    def test_features_token_count(self, tiny_vit, rng):
        images = rng.normal(size=(2, 16, 16, 3)).astype(np.float32)
        tokens = tiny_vit.features(Tensor(images))
        assert tokens.shape == (2, TINY_VIT.num_tokens, TINY_VIT.embed_dim)

    def test_seed_determinism(self, rng):
        a = build_vit(TINY_VIT, seed=7)
        b = build_vit(TINY_VIT, seed=7)
        images = rng.normal(size=(1, 16, 16, 3)).astype(np.float32)
        np.testing.assert_allclose(a(Tensor(images)).data, b(Tensor(images)).data)

    def test_different_seeds_differ(self, rng):
        a = build_vit(TINY_VIT, seed=0)
        b = build_vit(TINY_VIT, seed=1)
        images = rng.normal(size=(1, 16, 16, 3)).astype(np.float32)
        assert not np.allclose(a(Tensor(images)).data, b(Tensor(images)).data)

    def test_attention_maps_per_block(self, tiny_vit, rng):
        images = rng.normal(size=(2, 16, 16, 3)).astype(np.float32)
        tiny_vit(Tensor(images))
        maps = tiny_vit.attention_maps()
        assert len(maps) == TINY_VIT.depth
        assert maps[0].shape == (2, TINY_VIT.num_heads, TINY_VIT.num_tokens, TINY_VIT.num_tokens)

    def test_attention_maps_before_forward_rejected(self, tiny_vit):
        with pytest.raises(RuntimeError):
            tiny_vit.attention_maps()

    def test_build_vit_rejects_swin_family(self):
        bad = ModelConfig("x", "swin", 16, 4, 3, 10, 32, 2, 2)
        with pytest.raises(ValueError):
            build_vit(bad)


class TestDeiT:
    def test_train_mode_returns_both_heads(self, tiny_deit, rng):
        images = rng.normal(size=(2, 16, 16, 3)).astype(np.float32)
        tiny_deit.train()
        out = tiny_deit(Tensor(images))
        assert out.shape == (2, 2, 10)

    def test_eval_mode_averages_heads(self, tiny_deit, rng):
        images = rng.normal(size=(2, 16, 16, 3)).astype(np.float32)
        tiny_deit.train()
        both = tiny_deit(Tensor(images)).data
        tiny_deit.eval()
        avg = tiny_deit(Tensor(images)).data
        np.testing.assert_allclose(avg, both.mean(axis=1), rtol=2e-4, atol=1e-5)

    def test_distillation_token_present(self, tiny_deit):
        assert tiny_deit.dist_token is not None
        assert tiny_deit.head_dist is not None
