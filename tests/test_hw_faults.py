"""Tests for QUA soft-error injection, protection, and the golden path.

Covers the injector's determinism contract, each protection scheme's
detect/correct/silent accounting, the satellite guardrail in the QU, and
the golden-output regression proving the fault machinery changed nothing
when disarmed.
"""

import numpy as np
import pytest

from repro.hw import (
    ACC_PHYSICAL_BITS,
    QUA,
    BitFaultInjector,
    BlockExecutor,
    ModelExecutor,
    ProtectionConfig,
    ProtectionStats,
    SITE_ACCUMULATOR,
    SITE_QUB,
    SITE_REGISTER,
    SITE_SFU,
    encode_tensor,
    majority_vote,
    parity_filter,
    popcount,
    protection_overhead,
)
from repro.quant import PTQPipeline, progressive_relaxation
from repro.resilience import BIT_FLIP, FaultPlan, FaultSpec, NumericGuardError

ALL_ON = ProtectionConfig()
ALL_OFF = ProtectionConfig(parity=False, tmr=False, range_guard=False)


@pytest.fixture(scope="module")
def quq_pipeline(tiny_trained, calib_images):
    pipeline = PTQPipeline(tiny_trained, method="quq", bits=8, coverage="full")
    pipeline.calibrate(calib_images)
    pipeline.detach()
    yield pipeline
    pipeline.detach()


# ----------------------------------------------------------------------
class TestBitFaultInjector:
    def test_rejects_bad_ber_and_sites(self):
        with pytest.raises(ValueError):
            BitFaultInjector(ber=1.0)
        with pytest.raises(ValueError):
            BitFaultInjector(ber=-0.1)
        with pytest.raises(ValueError):
            BitFaultInjector(ber=0.01, sites=("qub", "dram"))

    def test_same_seed_same_flips(self):
        words = np.arange(256, dtype=np.uint8)
        a = BitFaultInjector(ber=0.05, seed=7).corrupt_words(words, 8, SITE_QUB, "t")
        b = BitFaultInjector(ber=0.05, seed=7).corrupt_words(words, 8, SITE_QUB, "t")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, words)

    def test_different_seed_different_flips(self):
        words = np.arange(256, dtype=np.uint8)
        a = BitFaultInjector(ber=0.05, seed=7).corrupt_words(words, 8, SITE_QUB, "t")
        b = BitFaultInjector(ber=0.05, seed=8).corrupt_words(words, 8, SITE_QUB, "t")
        assert not np.array_equal(a, b)

    def test_event_index_varies_the_stream(self):
        words = np.zeros(512, dtype=np.uint8)
        inj = BitFaultInjector(ber=0.05, seed=3)
        first = inj.corrupt_words(words, 8, SITE_QUB, "t")
        second = inj.corrupt_words(words, 8, SITE_QUB, "t")
        assert not np.array_equal(first, second)
        assert inj.events(SITE_QUB) == 2

    def test_zero_ber_is_noop_but_consumes_events(self):
        words = np.arange(64, dtype=np.uint8)
        inj = BitFaultInjector(ber=0.0, seed=1)
        out = inj.corrupt_words(words, 8, SITE_QUB, "t")
        assert out is words
        assert inj.events(SITE_QUB) == 1
        assert inj.flipped_bits() == 0

    def test_disabled_site_is_inert(self):
        words = np.arange(64, dtype=np.uint8)
        inj = BitFaultInjector(ber=0.5, seed=1, sites=(SITE_REGISTER,))
        assert inj.corrupt_words(words, 8, SITE_QUB, "t") is words
        assert inj.events(SITE_QUB) == 0

    def test_plan_window_gates_injection(self):
        # Flips fire only on the second event of the site.
        plan = FaultPlan([FaultSpec(BIT_FLIP, start=1, count=1)])
        inj = BitFaultInjector(ber=0.5, seed=5, plan=plan)
        words = np.arange(128, dtype=np.uint8)
        first = inj.corrupt_words(words, 8, SITE_QUB, "t")
        second = inj.corrupt_words(words, 8, SITE_QUB, "t")
        third = inj.corrupt_words(words, 8, SITE_QUB, "t")
        assert first is words and third is words
        assert not np.array_equal(second, words)
        assert plan.injected(BIT_FLIP) == 1

    def test_qub_flips_stay_inside_word_width(self):
        words = np.zeros(4096, dtype=np.uint8)
        faulty = BitFaultInjector(ber=0.02, seed=2).corrupt_words(
            words, 6, SITE_QUB, "t"
        )
        assert int(faulty.max()) < 2**6

    def test_accumulator_flips_confined_to_physical_bits(self):
        acc = np.zeros(4096, dtype=np.int64)
        faulty = BitFaultInjector(ber=0.01, seed=9).corrupt_accumulator(acc, "t")
        diff = np.bitwise_xor(acc, faulty)
        assert diff.any()
        assert (diff >> ACC_PHYSICAL_BITS == 0).all()

    def test_snapshot_reports_injections(self):
        inj = BitFaultInjector(ber=0.05, seed=7)
        inj.corrupt_words(np.zeros(256, dtype=np.uint8), 8, SITE_QUB, "t")
        snap = inj.snapshot()
        assert snap["ber"] == 0.05
        assert snap["events"][SITE_QUB] == 1
        assert snap["flipped_bits"][SITE_QUB] >= 1


# ----------------------------------------------------------------------
class TestProtectionPrimitives:
    def test_popcount(self):
        words = np.array([0b0, 0b1, 0b1011, 0xFF], dtype=np.uint8)
        assert popcount(words, 8).tolist() == [0, 1, 3, 8]

    def test_parity_catches_single_flips(self):
        golden = np.array([3, 5, 9], dtype=np.uint8)
        faulty = golden ^ np.array([0, 4, 0], dtype=np.uint8)
        out, faulted, detected, silent = parity_filter(golden, faulty, 8, parity=True)
        assert np.array_equal(out, golden)
        assert (faulted, detected, silent) == (1, 1, 0)

    def test_even_weight_corruption_is_silent(self):
        golden = np.array([3, 5, 9], dtype=np.uint8)
        faulty = golden ^ np.array([0b110, 0, 0], dtype=np.uint8)
        out, faulted, detected, silent = parity_filter(golden, faulty, 8, parity=True)
        assert np.array_equal(out, faulty)
        assert (faulted, detected, silent) == (1, 0, 1)

    def test_parity_off_passes_everything(self):
        golden = np.array([3, 5], dtype=np.uint8)
        faulty = golden ^ np.array([1, 0], dtype=np.uint8)
        out, faulted, detected, silent = parity_filter(golden, faulty, 8, parity=False)
        assert np.array_equal(out, faulty)
        assert (faulted, detected, silent) == (1, 0, 1)

    def test_majority_outvotes_single_copy(self):
        golden = np.array([0x42, 0x17], dtype=np.uint8)
        corrupted = golden ^ np.array([0x80, 0], dtype=np.uint8)
        assert np.array_equal(majority_vote([corrupted, golden, golden]), golden)

    def test_two_copy_agreement_wins_vote(self):
        golden = np.array([0x42], dtype=np.uint8)
        bad = golden ^ np.uint8(0x08)
        assert np.array_equal(majority_vote([bad, bad, golden]), bad)


# ----------------------------------------------------------------------
def _encoded_pair(rng, bits=8, m=16, k=32, n=24):
    x = rng.standard_t(df=3, size=(m, k)) * 0.3
    w = rng.normal(size=(k, n)) * 0.05
    return encode_tensor(x, bits), encode_tensor(w, bits)


class TestQUAProtection:
    def test_armed_zero_ber_bit_exact(self, rng):
        ex, ew = _encoded_pair(rng)
        golden = QUA().integer_gemm(ex, ew)
        qua = QUA(faults=BitFaultInjector(ber=0.0, seed=1), protection=ALL_ON)
        assert np.array_equal(qua.integer_gemm(ex, ew), golden)
        assert qua.stats.silent_total() == 0

    def test_parity_refetch_reduces_qub_damage(self, rng):
        ex, ew = _encoded_pair(rng)
        golden = QUA().integer_gemm(ex, ew)

        def run(protection):
            stats = ProtectionStats()
            qua = QUA(
                faults=BitFaultInjector(ber=0.01, seed=11, sites=(SITE_QUB,)),
                protection=protection,
                stats=stats,
            )
            return qua.integer_gemm(ex, ew), stats

        out_unprot, stats_unprot = run(ALL_OFF)
        out_prot, stats_prot = run(ALL_ON)
        assert stats_unprot.qub_detected == 0
        assert stats_unprot.qub_silent == stats_unprot.qub_faulted_words > 0
        assert stats_prot.qub_detected > 0
        assert stats_prot.qub_silent < stats_unprot.qub_silent
        err_unprot = np.abs(out_unprot - golden).sum()
        err_prot = np.abs(out_prot - golden).sum()
        assert err_prot < err_unprot

    def test_tmr_zero_silent_register_corruptions(self, rng):
        # TMR's guarantee is against *single-copy* faults; at realistic
        # BERs the chance of the same bit flipping in two copies within
        # one fetch is negligible, so no corruption reaches the decoder.
        ex, ew = _encoded_pair(rng)
        stats = ProtectionStats()
        qua = QUA(
            faults=BitFaultInjector(ber=2e-3, seed=14, sites=(SITE_REGISTER,)),
            protection=ALL_ON,
            stats=stats,
        )
        for _ in range(200):
            qua.integer_gemm(ex, ew)
        assert stats.register_faulted_copies > 0
        assert stats.register_silent == 0
        assert stats.register_corrected + stats.register_detected > 0

    def test_unprotected_registers_corrupt_or_detect(self, rng):
        ex, ew = _encoded_pair(rng)
        stats = ProtectionStats()
        qua = QUA(
            faults=BitFaultInjector(ber=0.02, seed=13, sites=(SITE_REGISTER,)),
            protection=ALL_OFF,
            stats=stats,
        )
        for _ in range(200):
            qua.integer_gemm(ex, ew)
        assert stats.register_faulted_copies > 0
        # Without TMR the only line of defense is the strict unpack.
        assert stats.register_corrected == 0
        assert stats.register_silent + stats.register_detected > 0

    def test_range_guard_bounds_accumulator_damage(self, rng):
        ex, ew = _encoded_pair(rng)
        dx, nx = ex.decoded()
        dw, nw = ew.decoded()
        envelope = np.abs(dx << nx) @ np.abs(dw << nw)
        stats = ProtectionStats()
        qua = QUA(
            faults=BitFaultInjector(ber=1e-3, seed=17, sites=(SITE_ACCUMULATOR,)),
            protection=ALL_ON,
            stats=stats,
        )
        outs = [qua.integer_gemm(ex, ew) for _ in range(50)]
        assert stats.acc_faulted_words > 0
        assert stats.acc_detected > 0  # high-order flips exceed the envelope
        for out in outs:
            assert (np.abs(out) <= envelope).all()

    def test_no_range_guard_lets_high_bits_through(self, rng):
        ex, ew = _encoded_pair(rng)
        dx, nx = ex.decoded()
        dw, nw = ew.decoded()
        envelope = np.abs(dx << nx) @ np.abs(dw << nw)
        qua = QUA(
            faults=BitFaultInjector(ber=1e-3, seed=17, sites=(SITE_ACCUMULATOR,)),
            protection=ALL_OFF,
        )
        escaped = any(
            (np.abs(qua.integer_gemm(ex, ew)) > envelope).any() for _ in range(50)
        )
        assert escaped
        assert qua.stats.acc_silent == qua.stats.acc_faulted_words > 0


# ----------------------------------------------------------------------
class TestRequantizeGuard:
    """Satellite: the QU routes bad accumulators through the numeric
    guardrail instead of silently clipping them into in-range codes."""

    def _out_params(self, rng, qua, ex, ew):
        acc = qua.integer_gemm(ex, ew)
        values = acc.astype(np.float64) * ex.base_delta * ew.base_delta
        return acc, progressive_relaxation(values, 8)

    def test_nan_rejected(self, rng):
        ex, ew = _encoded_pair(rng)
        qua = QUA()
        acc, out_params = self._out_params(rng, qua, ex, ew)
        scale = ex.base_delta * ew.base_delta
        bad = acc.astype(np.float64)
        bad[0, 0] = np.nan
        with pytest.raises(NumericGuardError, match="NaN"):
            qua.requantize(bad, scale, out_params)
        assert qua.stats.guard_trips == 1

    def test_inf_and_saturation_rejected(self, rng):
        ex, ew = _encoded_pair(rng)
        qua = QUA()
        acc, out_params = self._out_params(rng, qua, ex, ew)
        scale = ex.base_delta * ew.base_delta
        bad = acc.astype(np.float64)
        bad[0, 0] = np.inf
        with pytest.raises(NumericGuardError, match="Inf"):
            qua.requantize(bad, scale, out_params)
        sat = acc.astype(np.float64)
        sat[0, 0] = 1e9 / scale  # saturated but finite after scaling
        with pytest.raises(NumericGuardError, match="saturated"):
            qua.requantize(sat, scale, out_params)

    def test_clean_path_unchanged(self, rng):
        ex, ew = _encoded_pair(rng)
        qua = QUA()
        acc, out_params = self._out_params(rng, qua, ex, ew)
        qt = qua.requantize(acc, ex.base_delta * ew.base_delta, out_params)
        assert np.isfinite(qt.dequantize()).all()
        assert qua.stats.guard_trips == 0


# ----------------------------------------------------------------------
class TestGoldenRegression:
    """Replays tests/data/hw_golden.npz (generated before the fault wiring)
    through the live code: with injection disabled, every hw path must be
    bit-exact with the pre-refactor implementation."""

    @pytest.fixture(scope="class")
    def golden(self):
        return np.load("tests/data/hw_golden.npz")

    @pytest.mark.parametrize("bits", [6, 8])
    def test_datapath_bit_exact(self, golden, bits):
        x, w = golden["x"], golden["w"]
        tag = f"b{bits}"
        ex = encode_tensor(x, bits)
        ew = encode_tensor(w, bits)
        qua = QUA()
        assert np.array_equal(ex.qubs, golden[f"{tag}:x_qubs"])
        assert np.array_equal(ew.qubs, golden[f"{tag}:w_qubs"])
        assert ex.registers.pack() == tuple(golden[f"{tag}:x_regs"])
        assert ew.registers.pack() == tuple(golden[f"{tag}:w_regs"])
        assert ex.base_delta == golden[f"{tag}:x_base"]
        acc = qua.integer_gemm(ex, ew)
        assert np.array_equal(acc, golden[f"{tag}:acc"])
        assert np.array_equal(qua.gemm(ex, ew), golden[f"{tag}:gemm"])
        assert np.array_equal(ex.to_float(), golden[f"{tag}:x_float"])
        out_values = acc.astype(np.float64) * ex.base_delta * ew.base_delta
        out_params = progressive_relaxation(out_values, bits)
        qt = qua.requantize(acc, ex.base_delta * ew.base_delta, out_params)
        assert np.array_equal(qt.codes, golden[f"{tag}:rq_codes"])
        assert np.array_equal(qt.subranges, golden[f"{tag}:rq_subranges"])
        eo = qua.gemm_requantized(ex, ew, out_params)
        assert np.array_equal(eo.qubs, golden[f"{tag}:out_qubs"])
        assert eo.registers.pack() == tuple(golden[f"{tag}:out_regs"])
        assert eo.base_delta == golden[f"{tag}:out_base"]
        assert np.array_equal(qua.sfu(ex, "softmax"), golden[f"{tag}:softmax"])


# ----------------------------------------------------------------------
class TestExecutorFaultWiring:
    def test_armed_zero_ber_matches_unarmed(
        self, tiny_trained, quq_pipeline, calib_images
    ):
        images = calib_images[:2].astype(np.float64)
        baseline = ModelExecutor(tiny_trained, quq_pipeline, bits=8).run(images)
        armed = ModelExecutor(
            tiny_trained,
            quq_pipeline,
            bits=8,
            faults=BitFaultInjector(ber=0.0, seed=1),
            protection=ALL_ON,
        )
        assert np.array_equal(armed.run(images), baseline)
        assert armed.faults.events(SITE_QUB) > 0  # sites are actually wired
        assert armed.faults.events(SITE_REGISTER) > 0
        assert armed.faults.events(SITE_ACCUMULATOR) > 0
        assert armed.faults.events(SITE_SFU) > 0
        assert armed.stats.silent_total() == 0

    def test_same_seed_reproduces_faulty_run(
        self, tiny_trained, quq_pipeline, calib_images
    ):
        images = calib_images[:2].astype(np.float64)

        def run():
            executor = ModelExecutor(
                tiny_trained,
                quq_pipeline,
                bits=8,
                faults=BitFaultInjector(ber=2e-4, seed=42),
                protection=ALL_OFF,
            )
            return executor.run(images), executor.stats.snapshot()

        (out_a, stats_a), (out_b, stats_b) = run(), run()
        assert np.array_equal(out_a, out_b)
        assert stats_a == stats_b
        assert stats_a["silent_total"] > 0

    def test_protection_recovers_block_output(
        self, tiny_trained, quq_pipeline, calib_images
    ):
        from repro.autograd import Tensor, concat, no_grad

        quq_pipeline.detach()
        with no_grad():
            patches = tiny_trained.patch_embed(Tensor(calib_images[:2]))
            ones = Tensor(np.ones((2, 1, 1), dtype=np.float32))
            tokens = concat([ones * tiny_trained.cls_token, patches], axis=1)
            tokens = (tokens + tiny_trained.pos_embed).data.astype(np.float64)

        baseline = BlockExecutor(
            tiny_trained.blocks[0], quq_pipeline, "tiny_vit.blocks.0", bits=8
        ).run(tokens)

        def run(protection):
            executor = BlockExecutor(
                tiny_trained.blocks[0],
                quq_pipeline,
                "tiny_vit.blocks.0",
                bits=8,
                faults=BitFaultInjector(
                    ber=2e-4, seed=3, sites=(SITE_QUB, SITE_REGISTER)
                ),
                protection=protection,
            )
            return executor.run(tokens), executor.qua.stats

        out_prot, stats_prot = run(ALL_ON)
        out_unprot, stats_unprot = run(ALL_OFF)
        err_prot = np.abs(out_prot - baseline).max()
        err_unprot = np.abs(out_unprot - baseline).max()
        assert stats_unprot.silent_total() > stats_prot.silent_total()
        assert err_prot < err_unprot


# ----------------------------------------------------------------------
class TestProtectionOverhead:
    def test_schemes_accumulate(self):
        none = protection_overhead(ALL_OFF)
        assert none["area_mm2"] == 0.0 and none["schemes"] == {}
        full = protection_overhead(ALL_ON)
        assert set(full["schemes"]) == {"parity", "tmr", "range_guard"}
        assert full["area_overhead_pct"] > 0
        partial = protection_overhead(ProtectionConfig(parity=True, tmr=False, range_guard=False))
        assert 0 < partial["area_mm2"] < full["area_mm2"]

    def test_range_guard_dominates(self):
        full = protection_overhead(ALL_ON)
        guard = full["schemes"]["range_guard"]["area_mm2"]
        assert guard > full["schemes"]["parity"]["area_mm2"]
        assert guard > full["schemes"]["tmr"]["area_mm2"]
